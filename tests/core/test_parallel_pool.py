"""Lifecycle tests for the persistent zero-copy worker pool.

The parallel path of :class:`~repro.core.sharding.ShardedPatternCounter`
is built on :class:`~repro.core.parallel.ShardWorkerPool`.  These tests
pin the lifecycle contracts rather than numeric parity (which lives in
``tests/property/test_shard_parity.py``):

* the pool is created lazily, reused across query batches, and clamped
  to the shard count;
* a single-shard counter never builds a pool at all (serial routing);
* a failing parallel batch retires the pool — executor shut down with
  cancelled futures, shared-memory exports unlinked — and the next
  query rebuilds a fresh one (the PR-3 leak regression);
* ``close()`` releases every shared-memory block.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import PatternCounter, ShardedPatternCounter
from repro.core.parallel import (
    PackShardRef,
    ShardWorkerPool,
    ShmShardRef,
    chunk_bounds,
)
from repro.core.workload import random_pattern_workload
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def data():
    return load_dataset("bluenile", n_rows=400, seed=3)


@pytest.fixture(scope="module")
def patterns(data):
    workload = random_pattern_workload(
        PatternCounter(data), 12, np.random.default_rng(3), min_arity=1, max_arity=3
    )
    return [workload.pattern(i) for i in range(len(workload))]


def _wait_for_no_children(timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


# -- chunking -----------------------------------------------------------------


class TestChunkBounds:
    def test_partitions_exactly(self):
        bounds = chunk_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        assert sum(stop - start for start, stop in bounds) == 10

    def test_never_produces_empty_chunks(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]
        assert chunk_bounds(1, 4) == [(0, 1)]

    def test_zero_items(self):
        assert chunk_bounds(0, 3) == []

    def test_single_chunk(self):
        assert chunk_bounds(7, 1) == [(0, 7)]


# -- pool construction --------------------------------------------------------


class TestPoolConstruction:
    def test_rejects_single_shard(self, data):
        with pytest.raises(ValueError, match="at least 2 shards"):
            ShardWorkerPool([PatternCounter(data)], data.schema)

    def test_max_workers_clamped_to_shard_count(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 3)
        pool = ShardWorkerPool(
            list(sharded.shard_counters), data.schema, max_workers=64
        )
        try:
            assert pool.max_workers == 3
            assert not pool.started  # construction alone spawns nothing
        finally:
            pool.close()

    def test_max_workers_floor_is_one(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 2)
        pool = ShardWorkerPool(
            list(sharded.shard_counters), data.schema, max_workers=0
        )
        try:
            assert pool.max_workers == 1
        finally:
            pool.close()

    def test_in_memory_shards_export_shared_blocks(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 2)
        pool = ShardWorkerPool(list(sharded.shard_counters), data.schema)
        names = [
            ref.name for ref in pool._refs if isinstance(ref, ShmShardRef)
        ]
        assert len(names) == 2
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 2)
        pool = ShardWorkerPool(list(sharded.shard_counters), data.schema)
        pool.close()
        pool.close()

    def test_chunk_count_targets_a_few_tasks_per_worker(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 2)
        pool = ShardWorkerPool(
            list(sharded.shard_counters), data.schema, max_workers=2
        )
        try:
            assert pool.chunk_count(1) == 1
            assert pool.chunk_count(100) == 4  # 4*2 workers / 2 shards
            assert pool.chunk_count(3) <= 3
        finally:
            pool.close()


# -- serial routing (K = 1) ---------------------------------------------------


class TestSerialRouting:
    def test_single_shard_never_builds_a_pool(self, data, patterns):
        counter = ShardedPatternCounter.from_dataset(data, 1, parallel=True)
        reference = PatternCounter(data)
        assert list(counter.count_many(patterns)) == list(
            reference.count_many(patterns)
        )
        subset = data.attribute_names[:2]
        assert counter.label_size(subset) == reference.label_size(subset)
        combos, counts = counter.joint_table(subset)
        ref_combos, ref_counts = reference.joint_table(subset)
        assert np.array_equal(combos, ref_combos)
        assert np.array_equal(counts, ref_counts)
        assert counter._pool is None  # satellite pin: K=1 stays serial

    def test_serial_counter_close_is_safe(self, data):
        counter = ShardedPatternCounter.from_dataset(data, 1, parallel=True)
        counter.close()
        assert counter._pool is None


# -- pool lifecycle on the sharded counter ------------------------------------


@pytest.mark.parallel
class TestPoolLifecycle:
    def test_pool_is_persistent_across_query_batches(self, data, patterns):
        with ShardedPatternCounter.from_dataset(
            data, 3, parallel=True, max_workers=2
        ) as counter:
            reference = PatternCounter(data)
            assert counter._pool is None  # lazy: nothing spawned yet
            assert list(counter.count_many(patterns)) == list(
                reference.count_many(patterns)
            )
            pool = counter._pool
            assert pool is not None and pool.started
            # Subsequent batches (and other query families) reuse it.
            subset = data.attribute_names[:2]
            counter.joint_table(subset)
            assert counter.label_size(subset) == reference.label_size(
                subset
            )
            assert counter._pool is pool
        assert counter._pool is None
        assert _wait_for_no_children()

    def test_failed_batch_retires_pool_without_orphans(self, data, patterns):
        counter = ShardedPatternCounter.from_dataset(
            data, 3, parallel=True, max_workers=2
        )
        try:
            counter.count_many(patterns)
            pool = counter._pool
            assert pool is not None and pool.started
            blocks = list(pool._blocks)
            # An unknown task method fails inside the workers; the
            # counter's finally must retire the pool entirely.
            with pytest.raises(ValueError, match="unknown shard task"):
                counter._run_parallel([(0, "no_such_method", None)])
            assert counter._pool is None
            assert pool._executor is None  # shut down, futures cancelled
            assert pool._blocks == []  # shared memory unlinked
            for block in blocks:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=block.name)
            assert _wait_for_no_children()  # the leak regression
            # The next uncached parallel query builds a fresh pool.
            # (A repeat of the warmed batch would be answered from the
            # merged key-table cache without touching workers.)
            reference = PatternCounter(data)
            subset = data.attribute_names[:2]
            combos, counts = counter.joint_table(subset)
            ref_combos, ref_counts = reference.joint_table(subset)
            assert np.array_equal(combos, ref_combos)
            assert np.array_equal(counts, ref_counts)
            assert counter._pool is not None and counter._pool is not pool
        finally:
            counter.close()
        assert _wait_for_no_children()

    def test_pool_survives_repeat_use_after_close(self, data, patterns):
        counter = ShardedPatternCounter.from_dataset(
            data, 2, parallel=True, max_workers=2
        )
        reference = PatternCounter(data)
        expected = list(reference.count_many(patterns))
        assert list(counter.count_many(patterns)) == expected
        counter.close()
        assert counter._pool is None
        # A closed counter stays usable: cached answers need no pool,
        # and the next *uncached* query builds a fresh one.
        assert list(counter.count_many(patterns)) == expected
        assert counter._pool is None  # served from merged caches
        subset = data.attribute_names[:2]
        ref_combos, ref_counts = reference.joint_table(subset)
        combos, counts = counter.joint_table(subset)
        assert np.array_equal(combos, ref_combos)
        assert np.array_equal(counts, ref_counts)
        assert counter._pool is not None
        counter.close()
        assert _wait_for_no_children()

    def test_unknown_method_raises_from_pool(self, data):
        sharded = ShardedPatternCounter.from_dataset(data, 2)
        pool = ShardWorkerPool(
            list(sharded.shard_counters), data.schema, max_workers=1
        )
        try:
            with pytest.raises(ValueError, match="unknown shard task"):
                pool.run_shard_tasks([(0, "bogus", None)])
        finally:
            pool.close()
        assert _wait_for_no_children()


# -- pack-backed refs ---------------------------------------------------------


class TestPackBackedRefs:
    def test_pack_counters_ship_references_not_blocks(self, data, tmp_path):
        from repro import write_pack

        base = ShardedPatternCounter.from_dataset(data, 3)
        pack_dir = write_pack(tmp_path / "pack", base)
        reopened = ShardedPatternCounter.from_pack(pack_dir)
        pool = ShardWorkerPool(
            list(reopened.shard_counters), reopened.schema
        )
        try:
            assert all(
                isinstance(ref, PackShardRef) for ref in pool._refs
            )
            assert [ref.index for ref in pool._refs] == [0, 1, 2]
            assert pool._blocks == []  # nothing copied: packs are shared
        finally:
            pool.close()
