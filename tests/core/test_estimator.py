"""Unit tests for :mod:`repro.core.estimator` (Definition 2.11)."""

import pytest

from repro.core.counts import PatternCounter
from repro.core.estimator import LabelEstimator, MultiLabelEstimator
from repro.core.label import build_label
from repro.core.pattern import Pattern
from repro.core.patternsets import full_pattern_set
from repro.dataset.table import Dataset


@pytest.fixture
def target() -> Pattern:
    return Pattern(
        {
            "gender": "Female",
            "age group": "20-39",
            "marital status": "married",
        }
    )


class TestExample212:
    def test_estimate_with_age_marital_label(self, figure2, target):
        """Example 2.12: Est = 6 * 9/18 = 3 with S = {age, marital}."""
        label = build_label(figure2, ["age group", "marital status"])
        assert LabelEstimator(label).estimate(target) == pytest.approx(3.0)

    def test_estimate_with_gender_age_label(self, figure2, target):
        """Example 2.12: Est = 6 * 6/18 = 2 with S' = {gender, age}."""
        label = build_label(figure2, ["gender", "age group"])
        assert LabelEstimator(label).estimate(target) == pytest.approx(2.0)

    def test_example_2_14_errors(self, figure2, target):
        """Example 2.14: true count 3, so errors are 0 and 1."""
        counter = PatternCounter(figure2)
        assert counter.count(target) == 3
        l1 = build_label(figure2, ["age group", "marital status"])
        l2 = build_label(figure2, ["gender", "age group"])
        assert abs(3 - LabelEstimator(l1).estimate(target)) == 0
        assert abs(3 - LabelEstimator(l2).estimate(target)) == 1


class TestExactness:
    def test_exact_when_pattern_within_s(self, figure2):
        """Section III-A: Attr(p) ⊆ S implies an exact estimate."""
        counter = PatternCounter(figure2)
        label = build_label(figure2, ["gender", "race"])
        estimator = LabelEstimator(label)
        for race in ("African-American", "Caucasian", "Hispanic"):
            pattern = Pattern({"gender": "Female", "race": race})
            assert estimator.estimate(pattern) == counter.count(pattern)
            assert estimator.is_exact_for(pattern)

    def test_exact_on_marginal_within_s(self, figure2):
        counter = PatternCounter(figure2)
        label = build_label(figure2, ["gender", "race"])
        estimator = LabelEstimator(label)
        pattern = Pattern({"race": "Hispanic"})
        assert estimator.estimate(pattern) == counter.count(pattern)

    def test_not_exact_outside_s(self, figure2):
        label = build_label(figure2, ["gender"])
        estimator = LabelEstimator(label)
        assert not estimator.is_exact_for(Pattern({"race": "Hispanic"}))


class TestIndependenceFallback:
    def test_empty_restriction_uses_total(self, figure2):
        """Disjoint Attr(p) and S: pure independence (Example 2.6)."""
        counter = PatternCounter(figure2)
        label = build_label(figure2, ["race"])
        estimator = LabelEstimator(label)
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        expected = (
            18
            * counter.fraction("gender", "Female")
            * counter.fraction("age group", "under 20")
        )
        assert estimator.estimate(pattern) == pytest.approx(expected)

    def test_empty_label_is_full_independence(self, figure2):
        counter = PatternCounter(figure2)
        label = build_label(figure2, [])
        estimator = LabelEstimator(label)
        pattern = Pattern({"gender": "Male", "race": "Caucasian"})
        expected = 18 * (9 / 18) * (6 / 18)
        assert estimator.estimate(pattern) == pytest.approx(expected)

    def test_binary_correlated_example_2_7(self):
        """Examples 2.5–2.8 with n=3 binary attributes, A1 == A2."""
        rows = []
        for b2 in (0, 1):
            for b3 in (0, 1):
                rows.append((str(b2), str(b2), str(b3)))  # A1 = A2
        data = Dataset.from_rows(["A1", "A2", "A3"], rows)
        counter = PatternCounter(data)
        target = Pattern({"A1": "0", "A2": "0", "A3": "0"})
        # Independence-only estimate (Example 2.7): |D| * (1/2)^3 = 0.5
        vc_only = LabelEstimator(build_label(data, []))
        assert vc_only.estimate(target) == pytest.approx(4 * 0.125)
        # With PC over {A1, A2} (Example 2.8): exact count 1.
        informed = LabelEstimator(build_label(data, ["A1", "A2"]))
        assert informed.estimate(target) == pytest.approx(
            counter.count(target)
        )

    def test_zero_base_gives_zero_estimate(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        estimator = LabelEstimator(label)
        pattern = Pattern(
            {
                "age group": "under 20",
                "marital status": "married",
                "gender": "Female",
            }
        )
        assert estimator.estimate(pattern) == 0.0

    def test_estimate_many(self, figure2):
        label = build_label(figure2, ["gender"])
        estimator = LabelEstimator(label)
        patterns = [Pattern({"gender": "Female"}), Pattern({"gender": "Male"})]
        assert estimator.estimate_many(patterns) == [9.0, 9.0]


class TestMultiLabelEstimator:
    def test_prefers_covering_label(self, figure2):
        counter = PatternCounter(figure2)
        labels = [
            build_label(counter, ["gender", "age group"]),
            build_label(counter, ["age group", "marital status"]),
        ]
        multi = MultiLabelEstimator(labels)
        # Fully covered by the second label: exact.
        pattern = Pattern(
            {"age group": "20-39", "marital status": "married"}
        )
        assert multi.estimate(pattern) == counter.count(pattern)

    def test_never_worse_than_worst_single_label(self, figure2, target):
        counter = PatternCounter(figure2)
        labels = [
            build_label(counter, ["gender", "age group"]),
            build_label(counter, ["age group", "marital status"]),
        ]
        multi = MultiLabelEstimator(labels)
        singles = [LabelEstimator(l).estimate(target) for l in labels]
        estimate = multi.estimate(target)
        assert min(singles) <= estimate <= max(singles)

    def test_multi_label_beats_single_on_average(self, compas_small):
        """Future-work claim: multiple labels improve overall accuracy."""
        counter = PatternCounter(compas_small)
        s1 = ["Sex", "Age", "Race"]
        s2 = ["DecileScore", "ScoreText", "RecSupervisionLevel"]
        l1, l2 = build_label(counter, s1), build_label(counter, s2)
        multi = MultiLabelEstimator([l1, l2], reduce="median")
        pattern_set = full_pattern_set(counter)
        patterns = [
            pattern_set.pattern(i) for i in range(0, len(pattern_set), 37)
        ]
        truths = [counter.count(p) for p in patterns]

        def total_error(estimates):
            return sum(abs(t - e) for t, e in zip(truths, estimates))

        err_multi = total_error([multi.estimate(p) for p in patterns])
        err_single = min(
            total_error([LabelEstimator(l).estimate(p) for p in patterns])
            for l in (l1, l2)
        )
        assert err_multi <= err_single * 1.25  # never much worse

    def test_reduce_strategies(self, figure2, target):
        labels = [
            build_label(figure2, ["gender", "age group"]),
            build_label(figure2, ["age group", "marital status"]),
        ]
        for reduce in ("median", "min", "max", "mean"):
            MultiLabelEstimator(labels, reduce=reduce).estimate(target)

    def test_unknown_reduce_rejected(self, figure2):
        label = build_label(figure2, ["gender"])
        with pytest.raises(ValueError, match="unknown reduce"):
            MultiLabelEstimator([label], reduce="mode")

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiLabelEstimator([])

    def test_mismatched_totals_rejected(self, figure2):
        l1 = build_label(figure2, ["gender"])
        l2 = build_label(figure2.head(5), ["gender"])
        with pytest.raises(ValueError, match="different sizes"):
            MultiLabelEstimator([l1, l2])
