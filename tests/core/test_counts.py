"""Unit tests for :mod:`repro.core.counts` against the paper's Figure 2."""

import pytest

from repro.core.counts import PatternCounter
from repro.core.pattern import Pattern
from repro.dataset.table import Dataset


class TestCount:
    def test_example_2_4(self, figure2_counter):
        """Example 2.4: c_D({age=under 20, marital=single}) = 6."""
        pattern = Pattern(
            {"age group": "under 20", "marital status": "single"}
        )
        assert figure2_counter.count(pattern) == 6

    def test_single_attribute_counts_match_figure2(self, figure2_counter):
        assert figure2_counter.count(Pattern({"gender": "Female"})) == 9
        assert figure2_counter.count(Pattern({"gender": "Male"})) == 9
        assert figure2_counter.count(Pattern({"age group": "under 20"})) == 6
        assert figure2_counter.count(Pattern({"age group": "20-39"})) == 12

    def test_zero_count_pattern(self, figure2_counter):
        pattern = Pattern(
            {"age group": "under 20", "marital status": "married"}
        )
        assert figure2_counter.count(pattern) == 0

    def test_full_width_pattern(self, figure2_counter):
        pattern = Pattern(
            {
                "gender": "Female",
                "age group": "under 20",
                "race": "African-American",
                "marital status": "single",
            }
        )
        assert figure2_counter.count(pattern) == 1

    def test_unknown_value_raises(self, figure2_counter):
        with pytest.raises(KeyError):
            figure2_counter.count(Pattern({"gender": "robot"}))

    def test_missing_values_never_satisfy(self):
        data = Dataset.from_columns({"a": ["x", None, "x"], "b": ["1", "1", "1"]})
        counter = PatternCounter(data)
        assert counter.count(Pattern({"a": "x"})) == 2
        assert counter.count(Pattern({"a": "x", "b": "1"})) == 2


class TestValueStatistics:
    def test_value_counts_cached_and_correct(self, figure2_counter):
        first = figure2_counter.value_counts("race")
        assert first == {
            "African-American": 6,
            "Caucasian": 6,
            "Hispanic": 6,
        }
        assert figure2_counter.value_counts("race") is first  # cached

    def test_fractions_sum_to_one(self, figure2_counter):
        fractions = figure2_counter.fractions("marital status")
        assert fractions.sum() == pytest.approx(1.0)

    def test_fraction_single_value(self, figure2_counter):
        assert figure2_counter.fraction("gender", "Female") == pytest.approx(
            0.5
        )

    def test_fractions_with_missing_normalize_over_present(self):
        data = Dataset.from_columns({"a": ["x", "x", "y", None]})
        counter = PatternCounter(data)
        assert counter.fraction("a", "x") == pytest.approx(2 / 3)


class TestAttributeSetStatistics:
    def test_label_size_example_2_10(self, figure2_counter):
        """Example 2.10: |PC| over {age, marital} = 3; over {gender, age} = 4."""
        assert figure2_counter.label_size(("age group", "marital status")) == 3
        assert figure2_counter.label_size(("gender", "age group")) == 4

    def test_label_size_cached(self, figure2_counter):
        key = ("gender", "race")
        first = figure2_counter.label_size(key)
        assert figure2_counter.label_size(key) == first

    def test_joint_table_counts_sum_to_rows(self, figure2_counter):
        _, counts = figure2_counter.joint_table(("gender", "race"))
        assert counts.sum() == 18

    def test_distinct_full_rows_cached(self, figure2_counter):
        first = figure2_counter.distinct_full_rows()
        second = figure2_counter.distinct_full_rows()
        assert first[0] is second[0]

    def test_distinct_full_rows_cover_all_tuples(self, figure2_counter):
        _, counts = figure2_counter.distinct_full_rows()
        assert counts.sum() == 18


class TestConversions:
    def test_pattern_from_codes_roundtrip(self, figure2_counter):
        pattern = Pattern({"gender": "Female", "race": "Hispanic"})
        codes = figure2_counter.codes_from_pattern(pattern)
        rebuilt = figure2_counter.pattern_from_codes(
            list(codes), [codes[a] for a in codes]
        )
        assert rebuilt == pattern

    def test_pattern_from_missing_code_rejected(self, figure2_counter):
        with pytest.raises(ValueError, match="missing"):
            figure2_counter.pattern_from_codes(["gender"], [-1])
