"""Unit tests for :mod:`repro.core.counts` against the paper's Figure 2."""

import pytest

from repro.core.counts import PatternCounter
from repro.core.pattern import Pattern
from repro.dataset.table import Dataset


class TestCount:
    def test_example_2_4(self, figure2_counter):
        """Example 2.4: c_D({age=under 20, marital=single}) = 6."""
        pattern = Pattern(
            {"age group": "under 20", "marital status": "single"}
        )
        assert figure2_counter.count(pattern) == 6

    def test_single_attribute_counts_match_figure2(self, figure2_counter):
        assert figure2_counter.count(Pattern({"gender": "Female"})) == 9
        assert figure2_counter.count(Pattern({"gender": "Male"})) == 9
        assert figure2_counter.count(Pattern({"age group": "under 20"})) == 6
        assert figure2_counter.count(Pattern({"age group": "20-39"})) == 12

    def test_zero_count_pattern(self, figure2_counter):
        pattern = Pattern(
            {"age group": "under 20", "marital status": "married"}
        )
        assert figure2_counter.count(pattern) == 0

    def test_full_width_pattern(self, figure2_counter):
        pattern = Pattern(
            {
                "gender": "Female",
                "age group": "under 20",
                "race": "African-American",
                "marital status": "single",
            }
        )
        assert figure2_counter.count(pattern) == 1

    def test_unknown_value_raises(self, figure2_counter):
        with pytest.raises(KeyError):
            figure2_counter.count(Pattern({"gender": "robot"}))

    def test_missing_values_never_satisfy(self):
        data = Dataset.from_columns({"a": ["x", None, "x"], "b": ["1", "1", "1"]})
        counter = PatternCounter(data)
        assert counter.count(Pattern({"a": "x"})) == 2
        assert counter.count(Pattern({"a": "x", "b": "1"})) == 2


class TestValueStatistics:
    def test_value_counts_cached_and_correct(self, figure2_counter):
        first = figure2_counter.value_counts("race")
        assert first == {
            "African-American": 6,
            "Caucasian": 6,
            "Hispanic": 6,
        }
        assert figure2_counter.value_counts("race") is first  # cached

    def test_fractions_sum_to_one(self, figure2_counter):
        fractions = figure2_counter.fractions("marital status")
        assert fractions.sum() == pytest.approx(1.0)

    def test_fraction_single_value(self, figure2_counter):
        assert figure2_counter.fraction("gender", "Female") == pytest.approx(
            0.5
        )

    def test_fractions_with_missing_normalize_over_present(self):
        data = Dataset.from_columns({"a": ["x", "x", "y", None]})
        counter = PatternCounter(data)
        assert counter.fraction("a", "x") == pytest.approx(2 / 3)

    def test_unknown_attribute_error_names_itself_and_the_known(
        self, figure2_counter
    ):
        """The KeyError names the bad attribute AND the valid ones."""
        for method in (
            figure2_counter.value_counts,
            figure2_counter.fractions,
        ):
            with pytest.raises(KeyError) as info:
                method("zodiac")
            message = str(info.value)
            assert "'zodiac'" in message
            assert "known attributes" in message
            assert "gender" in message and "race" in message


class TestAttributeSetStatistics:
    def test_label_size_example_2_10(self, figure2_counter):
        """Example 2.10: |PC| over {age, marital} = 3; over {gender, age} = 4."""
        assert figure2_counter.label_size(("age group", "marital status")) == 3
        assert figure2_counter.label_size(("gender", "age group")) == 4

    def test_label_size_cached(self, figure2_counter):
        key = ("gender", "race")
        first = figure2_counter.label_size(key)
        assert figure2_counter.label_size(key) == first

    def test_joint_table_counts_sum_to_rows(self, figure2_counter):
        _, counts = figure2_counter.joint_table(("gender", "race"))
        assert counts.sum() == 18

    def test_distinct_full_rows_cached(self, figure2_counter):
        first = figure2_counter.distinct_full_rows()
        second = figure2_counter.distinct_full_rows()
        assert first[0] is second[0]

    def test_distinct_full_rows_cover_all_tuples(self, figure2_counter):
        _, counts = figure2_counter.distinct_full_rows()
        assert counts.sum() == 18


class TestConversions:
    def test_pattern_from_codes_roundtrip(self, figure2_counter):
        pattern = Pattern({"gender": "Female", "race": "Hispanic"})
        codes = figure2_counter.codes_from_pattern(pattern)
        rebuilt = figure2_counter.pattern_from_codes(
            list(codes), [codes[a] for a in codes]
        )
        assert rebuilt == pattern

    def test_pattern_from_missing_code_rejected(self, figure2_counter):
        with pytest.raises(ValueError, match="missing"):
            figure2_counter.pattern_from_codes(["gender"], [-1])


class TestBatchCounting:
    """count_many / counts_for_codes: the batch kernel's contract."""

    def test_count_many_matches_scalar_loop(self, figure2_counter):
        patterns = [
            Pattern({"age group": "under 20", "marital status": "single"}),
            Pattern({"gender": "Female"}),
            Pattern({"age group": "under 20", "marital status": "married"}),
            Pattern({"gender": "Male", "race": "Caucasian"}),
            Pattern({"gender": "Female"}),  # duplicates allowed
        ]
        batch = figure2_counter.count_many(patterns)
        assert list(batch) == [
            figure2_counter.count(p) for p in patterns
        ]

    def test_count_many_empty_batch(self, figure2_counter):
        assert figure2_counter.count_many([]).size == 0

    def test_count_many_stable_on_repeat(self, figure2_counter):
        """Second batch promotes to the key table; results must agree."""
        patterns = [
            Pattern({"gender": "Female", "race": "Hispanic"}),
            Pattern({"gender": "Male", "race": "Hispanic"}),
        ]
        first = figure2_counter.count_many(patterns)
        second = figure2_counter.count_many(patterns)
        third = figure2_counter.count_many(patterns)
        assert list(first) == list(second) == list(third)

    def test_counts_for_codes_shape_check(self, figure2_counter):
        import numpy as np

        with pytest.raises(ValueError, match="combos"):
            figure2_counter.counts_for_codes(
                ["gender"], np.zeros((2, 2), dtype=np.int32)
            )

    def test_count_many_with_missing_values(self):
        data = Dataset.from_columns(
            {
                "a": ["x", "x", None, "y", "x"],
                "b": ["u", None, "u", "v", "u"],
            }
        )
        counter = PatternCounter(data)
        patterns = [
            Pattern({"a": "x"}),
            Pattern({"a": "x", "b": "u"}),
            Pattern({"b": "v"}),
            Pattern({"a": "y", "b": "u"}),
        ]
        assert list(counter.count_many(patterns)) == [
            counter.count(p) for p in patterns
        ]

    def test_joint_tables_batch_matches_single(self, figure2_counter):
        tables = figure2_counter.joint_tables(
            [("gender",), ("gender", "race"), ("gender",)]
        )
        assert set(tables) == {("gender",), ("gender", "race")}
        combos, counts = tables[("gender", "race")]
        single = figure2_counter.joint_table(("gender", "race"))
        assert (combos == single[0]).all()
        assert (counts == single[1]).all()


class TestCacheInvalidation:
    """The stale-cache bug: caches must die when the counter rebinds.

    Before the rebind hook existed, carrying one counter across a
    maintenance insert/delete kept serving `_fractions`, `_label_sizes`
    and joint/key tables of the *old* snapshot.  These tests pin the
    fixed behavior.
    """

    def _small(self):
        return Dataset.from_columns(
            {"a": ["x", "x", "y"], "b": ["u", "v", "u"]}
        )

    def _grown(self):
        return Dataset.from_columns(
            {
                "a": ["x", "x", "y", "y", "y", "y"],
                "b": ["u", "v", "u", "v", "v", "w"],
            }
        )

    def test_rebind_refreshes_all_derived_state(self):
        counter = PatternCounter(self._small())
        # Warm every cache family against the old snapshot.
        assert counter.fraction("a", "x") == pytest.approx(2 / 3)
        assert counter.label_size(("a", "b")) == 3
        assert counter.count_many([Pattern({"a": "y"})])[0] == 1
        assert counter.count_many([Pattern({"a": "y"})])[0] == 1
        counter.joint_table(("a", "b"))
        counter.distinct_full_rows()

        counter.rebind(self._grown())

        # Every answer must now describe the new snapshot; each of these
        # fails against the stale caches.
        assert counter.total_rows == 6
        assert counter.fraction("a", "x") == pytest.approx(2 / 6)
        assert counter.label_size(("a", "b")) == 5
        assert counter.count_many([Pattern({"a": "y"})])[0] == 4
        assert counter.value_count("b", "v") == 3
        _, counts = counter.distinct_full_rows()
        assert counts.sum() == 6

    def test_invalidate_caches_alone_is_enough_for_same_data(self):
        counter = PatternCounter(self._small())
        before = counter.count_many([Pattern({"a": "x", "b": "u"})])
        counter.invalidate_caches()
        after = counter.count_many([Pattern({"a": "x", "b": "u"})])
        assert list(before) == list(after)

    def test_rebind_returns_self(self):
        counter = PatternCounter(self._small())
        assert counter.rebind(self._grown()) is counter


class TestRadixOverflowFallback:
    """Attribute sets whose domain product overflows int64 must fall
    back to the scalar mask path — with identical counts."""

    def test_overflow_parity_and_no_key_cache(self):
        import numpy as np

        # 5 attributes x 2**16 categories: product is 2**80 >> 2**63.
        card = 2**16
        n_attrs, n_rows = 5, 40
        rng = np.random.default_rng(0)
        codes = rng.integers(0, card, size=(n_rows, n_attrs)).astype(
            np.int32
        )
        codes[5:] = codes[:35]  # force repeated rows -> counts > 1
        from repro.dataset.schema import Column, Schema

        schema = Schema(
            [
                Column(f"A{i}", tuple(range(card)))
                for i in range(n_attrs)
            ]
        )
        data = Dataset(schema, codes)
        counter = PatternCounter(data)
        attrs = tuple(f"A{i}" for i in range(n_attrs))
        assert counter.encoded_rows(attrs) is None

        patterns = [
            Pattern(
                {f"A{i}": int(codes[r, i]) for i in range(n_attrs)}
            )
            for r in (0, 5, 39)
        ] + [Pattern({f"A{i}": 1 for i in range(n_attrs)})]
        batch = counter.count_many(patterns)
        assert list(batch) == [counter.count(p) for p in patterns]
        assert batch[0] >= 1 and list(batch)[-1] in (0, 1)

    def test_narrow_subsets_of_wide_schema_still_batch(self):
        import numpy as np

        card = 2**16
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 3, size=(30, 5)).astype(np.int32)
        from repro.dataset.schema import Column, Schema

        schema = Schema(
            [Column(f"A{i}", tuple(range(card))) for i in range(5)]
        )
        data = Dataset(schema, codes)
        counter = PatternCounter(data)
        # A 2-attribute projection fits easily; the kernel must use it.
        assert counter.encoded_rows(("A0", "A1")) is not None
        patterns = [
            Pattern({"A0": 0, "A1": 2}),
            Pattern({"A0": 1}),
        ]
        assert list(counter.count_many(patterns)) == [
            counter.count(p) for p in patterns
        ]


class TestEmptyBatchGuards:
    """Empty query batches are exact no-ops, never edge-case crashes."""

    def test_count_many_of_nothing(self, figure2_counter):
        result = figure2_counter.count_many([])
        assert result.size == 0
        assert result.dtype.kind == "i"

    def test_count_many_of_empty_iterator(self, figure2_counter):
        assert figure2_counter.count_many(iter([])).size == 0

    def test_joint_tables_of_nothing(self, figure2_counter):
        assert figure2_counter.joint_tables([]) == {}

    def test_counts_for_codes_of_nothing(self, figure2_counter):
        import numpy as np

        result = figure2_counter.counts_for_codes(
            ["gender"], np.empty((0, 1), dtype=np.int32)
        )
        assert result.size == 0
