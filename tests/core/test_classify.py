"""Tests for Definition 3.1 classification and Proposition 3.2 checking."""

import itertools

import pytest

from repro import PatternCounter
from repro.core.classify import (
    EstimateKind,
    check_proposition_3_2,
    classification_profile,
    classify_estimate,
)


class TestClassifyEstimate:
    def test_trichotomy(self):
        assert classify_estimate(10, 10.0) is EstimateKind.EXACT
        assert classify_estimate(10, 12.0) is EstimateKind.OVER
        assert classify_estimate(10, 8.0) is EstimateKind.UNDER

    def test_tolerance(self):
        assert classify_estimate(10, 10.0 + 1e-12) is EstimateKind.EXACT


class TestClassificationProfile:
    def test_full_label_all_exact(self, figure2):
        counter = PatternCounter(figure2)
        profile = classification_profile(
            counter, figure2.attribute_names
        )
        assert profile.n_exact == profile.total
        assert profile.exact_share == 1.0

    def test_counts_sum_to_total(self, figure2):
        counter = PatternCounter(figure2)
        profile = classification_profile(counter, ("gender",))
        assert (
            profile.n_exact + profile.n_over + profile.n_under
            == profile.total
        )
        assert profile.total == 18

    def test_larger_subset_more_exact_mass(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        small = classification_profile(counter, ("cut",))
        large = classification_profile(counter, ("cut", "polish"))
        assert large.exact_share >= small.exact_share - 0.05


class TestProposition32:
    def test_theorem_never_violated_on_figure2(self, figure2):
        counter = PatternCounter(figure2)
        names = figure2.attribute_names
        for k in (1, 2, 3):
            for subset in itertools.combinations(names, k):
                for extra in names:
                    if extra in subset:
                        continue
                    superset = tuple(
                        sorted(subset + (extra,), key=names.index)
                    )
                    report = check_proposition_3_2(
                        counter, subset, superset
                    )
                    assert report.holds, (subset, superset)

    def test_theorem_never_violated_on_real_data(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        pairs = [
            (("cut",), ("cut", "polish")),
            (("polish",), ("polish", "symmetry")),
            (("cut", "polish"), ("cut", "polish", "symmetry")),
            (("shape",), ("shape", "color", "clarity")),
        ]
        for subset, superset in pairs:
            report = check_proposition_3_2(counter, subset, superset)
            assert report.holds, (subset, superset)
            assert report.n_applicable > 0

    def test_unconditional_violations_are_a_minority(self, bluenile_small):
        """Per-pattern, the superset label may lose on some patterns
        (only the conditional form is a theorem), but it must win on the
        majority — and on the *max* error, which is what Section IV-E
        actually measures."""
        counter = PatternCounter(bluenile_small)
        report = check_proposition_3_2(
            counter, ("cut", "polish"), ("cut", "polish", "symmetry")
        )
        assert (
            report.n_unconditional_violations < 0.5 * report.n_patterns
        )
        from repro import evaluate_label

        small = evaluate_label(counter, ("cut", "polish"))
        large = evaluate_label(counter, ("cut", "polish", "symmetry"))
        assert large.max_abs <= small.max_abs + 1e-9

    def test_subset_containment_enforced(self, figure2):
        counter = PatternCounter(figure2)
        with pytest.raises(ValueError, match="contained"):
            check_proposition_3_2(counter, ("gender",), ("race",))
