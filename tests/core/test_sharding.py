"""Unit tests for :mod:`repro.core.sharding`."""

import numpy as np
import pytest

from repro import Dataset, Pattern, PatternCounter, build_label
from repro.core.counts import as_counter, is_counter_like
from repro.core.sharding import (
    ShardedPatternCounter,
    make_counter,
    merge_count_tables,
)
from repro.datasets import load_dataset


@pytest.fixture
def sharded(figure2):
    return ShardedPatternCounter.from_dataset(figure2, 3)


class TestConstruction:
    def test_requires_at_least_one_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedPatternCounter([])

    def test_rejects_non_dataset_shards(self, figure2):
        with pytest.raises(TypeError, match="expected Dataset"):
            ShardedPatternCounter([figure2, "nope"])

    def test_rejects_mixed_schemas(self, figure2):
        other = Dataset.from_columns({"x": ["1", "2"]})
        with pytest.raises(ValueError, match="different schema"):
            ShardedPatternCounter([figure2, other])

    def test_from_dataset_partitions_all_rows(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 4)
        assert counter.n_shards == 4
        assert counter.total_rows == figure2.n_rows
        assert sum(s.n_rows for s in counter.shards) == figure2.n_rows

    def test_more_shards_than_rows_allows_empty_shards(self, figure2):
        small = figure2.head(3)
        counter = ShardedPatternCounter.from_dataset(small, 7)
        assert counter.total_rows == 3
        reference = PatternCounter(small)
        pattern = Pattern({"gender": "Female"})
        assert counter.count(pattern) == reference.count(pattern)

    def test_invalid_shard_count(self, figure2):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedPatternCounter.from_dataset(figure2, 0)

    def test_is_counter_like(self, sharded, figure2):
        assert is_counter_like(sharded)
        assert is_counter_like(PatternCounter(figure2))
        assert not is_counter_like(figure2)
        assert as_counter(sharded) is sharded


class TestDatasetView:
    def test_basic_shape(self, sharded, figure2):
        view = sharded.dataset
        assert view.n_rows == len(view) == figure2.n_rows
        assert view.schema == figure2.schema
        assert view.attribute_names == figure2.attribute_names
        assert view.n_attributes == figure2.n_attributes
        assert not view.has_missing

    def test_rows_preserved_in_shard_order(self, sharded, figure2):
        view = sharded.dataset
        assert view.row(0) == figure2.row(0)
        assert view.row(figure2.n_rows - 1) == figure2.row(
            figure2.n_rows - 1
        )
        assert list(view.iter_rows()) == list(figure2.iter_rows())
        with pytest.raises(IndexError):
            view.row(figure2.n_rows)

    def test_non_missing_mask_concatenates(self, sharded, figure2):
        np.testing.assert_array_equal(
            sharded.dataset.non_missing_mask(["gender"]),
            figure2.non_missing_mask(["gender"]),
        )

    def test_view_is_live_after_add_shard(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 2)
        view = counter.dataset
        counter.add_shard(figure2.head(4))
        assert view.n_rows == figure2.n_rows + 4


class TestMergedAnswers:
    def test_joint_table_matches_and_is_cached(self, sharded, figure2):
        reference = PatternCounter(figure2)
        combos, counts = sharded.joint_table(["gender", "race"])
        ref_combos, ref_counts = reference.joint_table(["gender", "race"])
        assert np.array_equal(combos, ref_combos)
        assert np.array_equal(counts, ref_counts)
        again, _ = sharded.joint_table(["gender", "race"])
        assert again is combos  # cached object, no re-merge

    def test_counts_for_codes(self, sharded, figure2):
        reference = PatternCounter(figure2)
        combos = np.array([[0, 0], [1, 1], [0, 2]], dtype=np.int32)
        np.testing.assert_array_equal(
            sharded.counts_for_codes(["gender", "race"], combos),
            reference.counts_for_codes(["gender", "race"], combos),
        )

    def test_empty_batches_are_noops(self, sharded):
        assert list(sharded.count_many([])) == []
        assert sharded.joint_tables([]) == {}
        empty = sharded.counts_for_codes(
            ["gender"], np.empty((0, 1), dtype=np.int32)
        )
        assert empty.size == 0

    def test_fraction_and_value_count(self, sharded, figure2):
        reference = PatternCounter(figure2)
        assert sharded.value_count("gender", "Male") == reference.value_count(
            "gender", "Male"
        )
        assert sharded.fraction("race", "Hispanic") == pytest.approx(
            reference.fraction("race", "Hispanic")
        )

    def test_unknown_attribute_error_names_itself_and_the_known(
        self, sharded
    ):
        for method in (sharded.value_counts, sharded.fractions):
            with pytest.raises(KeyError) as info:
                method("zodiac")
            message = str(info.value)
            assert "'zodiac'" in message
            assert "known attributes" in message
            assert "gender" in message

    def test_pattern_codecs(self, sharded):
        pattern = sharded.pattern_from_codes(["gender", "race"], [0, 1])
        assert sharded.codes_from_pattern(pattern) == {
            "gender": 0,
            "race": 1,
        }
        with pytest.raises(ValueError, match="missing value"):
            sharded.pattern_from_codes(["gender"], [-1])


class TestShardLifecycle:
    def test_add_shard_matches_concat(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 2)
        batch = figure2.head(5)
        counter.add_shard(batch)
        reference = PatternCounter(figure2.concat(batch))
        assert counter.total_rows == reference.total_rows
        for subset in (("gender",), ("gender", "race")):
            assert counter.label_size(subset) == reference.label_size(subset)
        label = build_label(counter, ("gender", "race"))
        assert label == build_label(reference, ("gender", "race"))

    def test_add_shard_rejects_schema_mismatch(self, sharded):
        with pytest.raises(ValueError, match="schema"):
            sharded.add_shard(Dataset.from_columns({"x": ["1"]}))

    def test_add_empty_shard_is_noop(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 2)
        before = counter.n_shards
        counter.add_shard(figure2.head(0))
        assert counter.n_shards == before

    def test_add_shard_refreshes_merged_caches(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 2)
        before = dict(counter.value_counts("gender"))
        counter.add_shard(figure2.filter_equals("gender", "Male"))
        after = counter.value_counts("gender")
        assert after["Male"] > before["Male"]
        assert after["Female"] == before["Female"]

    def test_rebind_repartitions(self, figure2):
        counter = ShardedPatternCounter.from_dataset(figure2, 3)
        counter.joint_table(["gender"])  # warm a merged cache
        smaller = figure2.head(6)
        counter.rebind(smaller)
        assert counter.n_shards == 3
        assert counter.total_rows == 6
        reference = PatternCounter(smaller)
        combos, counts = counter.joint_table(["gender"])
        ref_combos, ref_counts = reference.joint_table(["gender"])
        assert np.array_equal(combos, ref_combos)
        assert np.array_equal(counts, ref_counts)

    def test_invalidate_caches(self, sharded):
        sharded.joint_table(["gender"])
        sharded.invalidate_caches()
        assert sharded._joint_tables == {}


class TestParallel:
    def test_parallel_joint_tables_match_serial(self):
        data = load_dataset("bluenile", n_rows=400, seed=1)
        serial = ShardedPatternCounter.from_dataset(data, 3)
        parallel = ShardedPatternCounter.from_dataset(
            data, 3, parallel=True, max_workers=2
        )
        sets = [data.attribute_names[:2], data.attribute_names[2:4]]
        serial_tables = serial.joint_tables(sets)
        parallel_tables = parallel.joint_tables(sets)
        assert serial_tables.keys() == parallel_tables.keys()
        for key in serial_tables:
            assert np.array_equal(
                serial_tables[key][0], parallel_tables[key][0]
            )
            assert np.array_equal(
                serial_tables[key][1], parallel_tables[key][1]
            )


class TestMergeCountTables:
    def test_merges_and_sorts(self):
        a = (np.array([[0, 1], [2, 0]], dtype=np.int32), np.array([2, 3]))
        b = (np.array([[2, 0], [1, 1]], dtype=np.int32), np.array([5, 1]))
        combos, counts = merge_count_tables([a, b], 2)
        assert combos.tolist() == [[0, 1], [1, 1], [2, 0]]
        assert counts.tolist() == [2, 1, 8]

    def test_empty_inputs(self):
        combos, counts = merge_count_tables([], 3)
        assert combos.shape == (0, 3)
        assert counts.size == 0
        empty_part = (
            np.empty((0, 2), dtype=np.int32),
            np.empty(0, dtype=np.int64),
        )
        combos, counts = merge_count_tables([empty_part, empty_part], 2)
        assert combos.shape == (0, 2)


class TestMakeCounter:
    def test_dataset_dispatch(self, figure2):
        assert isinstance(make_counter(figure2), PatternCounter)
        assert isinstance(
            make_counter(figure2, shards=2), ShardedPatternCounter
        )
        assert isinstance(make_counter(figure2, shards=1), PatternCounter)

    def test_counters_pass_through(self, figure2, sharded):
        plain = PatternCounter(figure2)
        assert make_counter(plain) is plain
        assert make_counter(sharded) is sharded
        assert make_counter(sharded, shards=9) is sharded  # already built

    def test_chunk_iterable_one_shard_per_chunk(self, figure2):
        chunks = [figure2.head(6), figure2.take(np.arange(6, 18))]
        counter = make_counter(iter(chunks))
        assert isinstance(counter, ShardedPatternCounter)
        assert counter.n_shards == 2
        assert counter.total_rows == figure2.n_rows

    def test_chunk_iterable_coalesced(self, figure2):
        chunks = [figure2.take(np.arange(i, i + 6)) for i in (0, 6, 12)]
        counter = make_counter(chunks, shards=2)
        assert counter.n_shards == 2
        assert counter.total_rows == figure2.n_rows
        collapsed = make_counter(chunks, shards=1)
        assert isinstance(collapsed, PatternCounter)
        assert collapsed.total_rows == figure2.n_rows

    def test_more_shards_than_chunks_resplits_by_rows(self, figure2):
        """A chunk stream coarser than the requested shard count is
        re-partitioned, not silently delivered with fewer shards."""
        chunks = [figure2]  # one chunk, e.g. a file smaller than chunk_rows
        counter = make_counter(chunks, shards=4)
        assert isinstance(counter, ShardedPatternCounter)
        assert counter.n_shards == 4
        assert counter.total_rows == figure2.n_rows
        reference = PatternCounter(figure2)
        assert counter.value_counts("gender") == reference.value_counts(
            "gender"
        )

    def test_bad_sources_rejected(self):
        with pytest.raises(ValueError, match="zero chunks"):
            make_counter([])
        with pytest.raises(TypeError, match="expected Dataset"):
            make_counter(["nope"])
        with pytest.raises(TypeError, match="cannot build a counter"):
            make_counter(42)
