"""Unit tests for :mod:`repro.core.lattice` (Definitions 3.4, 3.5)."""

import itertools

import pytest

from repro.core.lattice import LabelLattice, gen_children

ORDER = ("g", "a", "r", "m")


class TestGenChildren:
    def test_example_3_6(self):
        """gen({gender, race}) = {{gender, race, marital}} only."""
        children = gen_children(ORDER, ("g", "r"))
        assert children == [("g", "r", "m")]

    def test_empty_set_yields_singletons(self):
        assert gen_children(ORDER, ()) == [("g",), ("a",), ("r",), ("m",)]

    def test_last_attribute_has_no_children(self):
        assert gen_children(ORDER, ("m",)) == []
        assert gen_children(ORDER, ("g", "m")) == []

    def test_children_subset_of_lattice_children(self):
        lattice = LabelLattice(ORDER)
        for subset in [("g",), ("a",), ("g", "a"), ("a", "r")]:
            generated = set(gen_children(ORDER, subset))
            all_children = set(lattice.children(subset))
            assert generated <= all_children

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError):
            gen_children(ORDER, ("zzz",))

    def test_every_nonempty_subset_generated_exactly_once(self):
        """Proposition 3.8: a gen-driven BFS covers each node once."""
        lattice = LabelLattice(ORDER)
        seen = list(lattice.iter_top_down())
        assert len(seen) == len(set(seen))
        expected = set()
        for size in range(1, 5):
            expected.update(itertools.combinations(ORDER, size))
        assert set(seen) == expected


class TestLabelLattice:
    def test_node_count(self):
        lattice = LabelLattice(ORDER)
        assert lattice.n_attributes == 4
        assert lattice.n_nodes == 16

    def test_normalize_sorts_by_attribute_order(self):
        lattice = LabelLattice(ORDER)
        assert lattice.normalize(("m", "g")) == ("g", "m")

    def test_normalize_rejects_duplicates_and_unknowns(self):
        lattice = LabelLattice(ORDER)
        with pytest.raises(ValueError, match="duplicates"):
            lattice.normalize(("g", "g"))
        with pytest.raises(KeyError):
            lattice.normalize(("x",))

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            LabelLattice(("a", "a"))

    def test_children_and_parents_are_inverse(self):
        lattice = LabelLattice(ORDER)
        node = ("g", "r")
        for child in lattice.children(node):
            assert node in lattice.parents(child)

    def test_parents_of_figure3_node(self):
        """Figure 3: {g, a, r} has parents {g, a}, {g, r}, {a, r}."""
        lattice = LabelLattice(ORDER)
        assert sorted(lattice.parents(("g", "a", "r"))) == [
            ("a", "r"),
            ("g", "a"),
            ("g", "r"),
        ]

    def test_level_enumeration(self):
        lattice = LabelLattice(ORDER)
        assert len(list(lattice.level(2))) == 6
        assert list(lattice.level(0)) == [()]
        assert list(lattice.level(9)) == []

    def test_to_networkx_matches_figure3(self):
        """The 4-attribute lattice of Figure 3: 16 nodes, 32 edges."""
        networkx = pytest.importorskip("networkx")
        graph = LabelLattice(ORDER).to_networkx()
        assert graph.number_of_nodes() == 16
        # Each node of size k has (4 - k) children: sum = 4*2^3 = 32.
        assert graph.number_of_edges() == 32
        assert networkx.is_directed_acyclic_graph(graph)
