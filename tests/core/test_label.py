"""Unit tests for :mod:`repro.core.label` (Definition 2.9)."""

import pytest

from repro.core.counts import PatternCounter
from repro.core.label import Label, build_label, label_size
from repro.core.pattern import Pattern
from repro.dataset.table import Dataset


class TestBuildLabel:
    def test_example_2_10_pc_content(self, figure2):
        """Example 2.10: PC over {age, marital} has exactly 3 entries."""
        label = build_label(figure2, ["age group", "marital status"])
        assert label.size == 3
        assert label.pc[("under 20", "single")] == 6
        assert label.pc[("20-39", "married")] == 6
        assert label.pc[("20-39", "divorced")] == 6

    def test_example_2_10_vc_content(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        assert label.vc["gender"] == {"Female": 9, "Male": 9}
        assert label.vc["race"] == {
            "African-American": 6,
            "Caucasian": 6,
            "Hispanic": 6,
        }

    def test_vc_identical_for_every_label(self, figure2):
        l1 = build_label(figure2, ["gender"])
        l2 = build_label(figure2, ["race", "marital status"])
        assert l1.vc == l2.vc

    def test_attributes_normalized_to_schema_order(self, figure2):
        label = build_label(figure2, ["marital status", "gender"])
        assert label.attributes == ("gender", "marital status")

    def test_duplicate_attributes_rejected(self, figure2):
        with pytest.raises(ValueError, match="duplicate"):
            build_label(figure2, ["gender", "gender"])

    def test_empty_attribute_set_allowed(self, figure2):
        label = build_label(figure2, [])
        assert label.size == 0
        assert label.total == 18

    def test_accepts_counter_and_reuses_caches(self, figure2):
        counter = PatternCounter(figure2)
        label = build_label(counter, ["gender"])
        assert label.size == 2

    def test_label_size_helper_matches_built_label(self, figure2):
        counter = PatternCounter(figure2)
        for subset in (["gender"], ["gender", "race"], []):
            built = build_label(counter, subset)
            assert label_size(counter, tuple(subset)) == built.size


class TestLabelQueries:
    def test_pattern_count_exact_lookup(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        found = label.pattern_count(
            Pattern({"age group": "under 20", "marital status": "single"})
        )
        assert found == 6
        absent = label.pattern_count(
            Pattern({"age group": "under 20", "marital status": "married"})
        )
        assert absent == 0

    def test_pattern_count_wrong_attribute_set_returns_none(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        assert label.pattern_count(Pattern({"gender": "Female"})) is None

    def test_restricted_count_marginalizes_exactly(self, figure2):
        counter = PatternCounter(figure2)
        label = build_label(counter, ["age group", "marital status"])
        for value in ("single", "married", "divorced"):
            pattern = Pattern({"marital status": value})
            assert label.restricted_count(pattern) == counter.count(pattern)

    def test_restricted_count_requires_subset_of_s(self, figure2):
        label = build_label(figure2, ["age group"])
        with pytest.raises(ValueError, match="within the label"):
            label.restricted_count(Pattern({"gender": "Female"}))

    def test_value_fraction(self, figure2):
        label = build_label(figure2, ["age group"])
        assert label.value_fraction("gender", "Female") == pytest.approx(0.5)
        with pytest.raises(KeyError):
            label.value_fraction("gender", "robot")

    def test_iter_pc_patterns(self, figure2):
        label = build_label(figure2, ["gender", "age group"])
        patterns = dict(label.iter_pc_patterns())
        assert (
            patterns[Pattern({"gender": "Female", "age group": "20-39"})] == 6
        )
        assert len(patterns) == 4

    def test_vc_size(self, figure2):
        label = build_label(figure2, ["gender"])
        # 2 + 2 + 3 + 3 domain values
        assert label.vc_size == 10

    def test_repr(self, figure2):
        label = build_label(figure2, ["gender"])
        assert "|PC|=2" in repr(label)


class TestValidation:
    def test_pc_arity_mismatch_rejected(self, figure2):
        good = build_label(figure2, ["gender"])
        with pytest.raises(ValueError, match="arity"):
            Label(
                attributes=("gender", "race"),
                pc={("Female",): 9},
                vc=good.vc,
                total=18,
                attribute_order=good.attribute_order,
            )

    def test_non_positive_pc_count_rejected(self, figure2):
        good = build_label(figure2, ["gender"])
        with pytest.raises(ValueError, match="positive"):
            Label(
                attributes=("gender",),
                pc={("Female",): 0},
                vc=good.vc,
                total=18,
                attribute_order=good.attribute_order,
            )

    def test_all_none_pc_key_rejected(self, figure2):
        good = build_label(figure2, ["gender"])
        with pytest.raises(ValueError, match="at least one"):
            Label(
                attributes=("gender",),
                pc={(None,): 3},
                vc=good.vc,
                total=18,
                attribute_order=good.attribute_order,
            )

    def test_unknown_attribute_rejected(self, figure2):
        good = build_label(figure2, ["gender"])
        with pytest.raises(ValueError, match="missing from"):
            Label(
                attributes=("nope",),
                pc={},
                vc=good.vc,
                total=18,
                attribute_order=good.attribute_order,
            )


class TestSerialization:
    def test_json_roundtrip(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        restored = Label.from_json(label.to_json())
        assert restored.attributes == label.attributes
        assert restored.total == label.total
        assert restored.size == label.size
        assert restored.pc == label.pc
        assert restored.vc == label.vc

    def test_partial_pattern_keys_roundtrip(self):
        data = Dataset.from_columns(
            {
                "a": ["x", "x", None, None],
                "b": ["1", "1", "1", "1"],
                "c": [None, None, "p", "p"],
            }
        )
        label = build_label(data, ["a", "b", "c"])
        restored = Label.from_json(label.to_json())
        assert restored.pc == label.pc
        assert any(None in key for key in restored.pc)


class TestMissingValueLabels:
    def test_partial_projections_stored_with_satisfaction_counts(self):
        data = Dataset.from_columns(
            {
                "a": ["x", "x", None],
                "b": ["1", "1", "1"],
                "c": [None, None, "p"],
            }
        )
        label = build_label(data, ["a", "b", "c"])
        # Projections: (x, 1, -) and (-, 1, p); singletons excluded.
        assert label.size == 2
        assert label.pc[("x", "1", None)] == 2
        assert label.pc[(None, "1", "p")] == 1

    def test_restricted_count_prefers_exact_partial_key(self):
        data = Dataset.from_columns(
            {
                "a": ["x", "x", None],
                "b": ["1", "1", "1"],
                "c": [None, None, "p"],
            }
        )
        label = build_label(data, ["a", "b", "c"])
        assert label.restricted_count(Pattern({"a": "x", "b": "1"})) == 2
