"""Tests for workload pattern sets and grouped vectorized evaluation."""

import numpy as np
import pytest

from repro import (
    PatternCounter,
    build_label,
    evaluate_label,
    top_down_search,
)
from repro.core.errors import grouped_estimates
from repro.core.estimator import LabelEstimator
from repro.core.workload import (
    arity_pattern_set,
    marginals_pattern_set,
    random_pattern_workload,
)


class TestRandomWorkload:
    def test_patterns_have_positive_counts(self, figure2_counter, rng):
        workload = random_pattern_workload(figure2_counter, 40, rng)
        assert len(workload) == 40
        assert (workload.counts > 0).all()

    def test_arity_bounds_respected(self, figure2_counter, rng):
        workload = random_pattern_workload(
            figure2_counter, 30, rng, min_arity=2, max_arity=3
        )
        for index in range(len(workload)):
            assert 2 <= len(workload.pattern(index)) <= 3

    def test_deterministic_given_rng(self, figure2_counter):
        w1 = random_pattern_workload(
            figure2_counter, 10, np.random.default_rng(3)
        )
        w2 = random_pattern_workload(
            figure2_counter, 10, np.random.default_rng(3)
        )
        patterns1 = [w1.pattern(i) for i in range(10)]
        patterns2 = [w2.pattern(i) for i in range(10)]
        assert patterns1 == patterns2

    def test_invalid_parameters(self, figure2_counter, rng):
        with pytest.raises(ValueError, match="positive"):
            random_pattern_workload(figure2_counter, 0, rng)
        with pytest.raises(ValueError, match="min_arity"):
            random_pattern_workload(
                figure2_counter, 5, rng, min_arity=3, max_arity=2
            )

    def test_empty_dataset_rejected(self, rng):
        from repro import Dataset
        from repro.dataset.schema import Column, Schema

        empty = Dataset(
            Schema([Column("a", ("x",))]),
            np.empty((0, 1), dtype=np.int32),
        )
        with pytest.raises(ValueError, match="empty"):
            random_pattern_workload(PatternCounter(empty), 5, rng)


class TestArityPatternSet:
    def test_arity_one_matches_marginals(self, figure2_counter):
        by_arity = arity_pattern_set(figure2_counter, 1)
        marginals = marginals_pattern_set(figure2_counter)
        assert len(by_arity) == len(marginals)
        # 2 + 2 + 3 + 3 present values in Figure 2.
        assert len(by_arity) == 10

    def test_arity_two_counts(self, figure2_counter):
        pattern_set = arity_pattern_set(figure2_counter, 2)
        for index in range(len(pattern_set)):
            pattern = pattern_set.pattern(index)
            assert len(pattern) == 2
            assert figure2_counter.count(pattern) == pattern_set.counts[index]

    def test_max_patterns_cap(self, figure2_counter):
        capped = arity_pattern_set(figure2_counter, 2, max_patterns=5)
        assert len(capped) == 5

    def test_invalid_arity(self, figure2_counter):
        with pytest.raises(ValueError, match="arity"):
            arity_pattern_set(figure2_counter, 0)
        with pytest.raises(ValueError, match="arity"):
            arity_pattern_set(figure2_counter, 99)


class TestMarginalsFloor:
    def test_every_label_exact_on_marginals(self, figure2_counter):
        marginals = marginals_pattern_set(figure2_counter)
        for subset in ((), ("gender",), ("age group", "race")):
            summary = evaluate_label(figure2_counter, subset, marginals)
            assert summary.max_abs == 0.0


class TestGroupedEstimates:
    def test_matches_per_pattern_estimator(self, figure2_counter, rng):
        workload = random_pattern_workload(figure2_counter, 50, rng)
        patterns = [workload.pattern(i) for i in range(len(workload))]
        subset = ("age group", "marital status")
        grouped = grouped_estimates(figure2_counter, subset, patterns)
        estimator = LabelEstimator(
            build_label(figure2_counter, subset)
        )
        for index, pattern in enumerate(patterns):
            assert grouped[index] == pytest.approx(
                estimator.estimate(pattern)
            )

    def test_evaluate_label_uses_grouped_path(self, figure2_counter, rng):
        workload = random_pattern_workload(figure2_counter, 30, rng)
        summary = evaluate_label(
            figure2_counter, ("gender", "race"), workload
        )
        assert summary.n_patterns == 30


class TestWorkloadDrivenSearch:
    def test_search_optimizes_for_the_workload(self, compas_small, rng):
        """A label optimized for a sensitive-attribute workload should do
        at least as well on it as the P_A-optimized label."""
        counter = PatternCounter(compas_small)
        workload = arity_pattern_set(
            counter, 2, max_patterns=400
        )
        targeted = top_down_search(counter, 30, pattern_set=workload)
        generic = top_down_search(counter, 30)
        targeted_error = targeted.objective_value
        generic_on_workload = evaluate_label(
            counter, generic.attributes, workload
        ).max_abs
        assert targeted_error <= generic_on_workload + 1e-9
