"""Tests for byte-level label sizing and the byte-budget search."""

import pytest

from repro import PatternCounter, build_label
from repro.core.sizing import (
    COUNT_BYTES,
    find_optimal_label_bytes,
    label_bytes,
    pc_bytes,
)


class TestPcBytes:
    def test_matches_manual_accounting(self, figure2):
        counter = PatternCounter(figure2)
        subset = ("gender", "age group")
        label = build_label(counter, subset)
        expected = sum(
            COUNT_BYTES + sum(len(str(v).encode()) for v in combo)
            for combo in label.pc
        )
        assert pc_bytes(counter, subset) == expected

    def test_empty_subset_is_free(self, figure2):
        assert pc_bytes(figure2, ()) == 0

    def test_monotone_under_attribute_addition(self, figure2):
        counter = PatternCounter(figure2)
        import itertools

        names = figure2.attribute_names
        for subset in itertools.combinations(names, 2):
            for extra in names:
                if extra in subset:
                    continue
                bigger = tuple(sorted(subset + (extra,)))
                assert pc_bytes(counter, bigger) >= pc_bytes(
                    counter, subset
                )

    def test_long_value_names_cost_more(self):
        from repro import Dataset

        short = Dataset.from_columns(
            {"a": ["x", "y"] * 5, "b": ["1", "2"] * 5}
        )
        long = Dataset.from_columns(
            {
                "a": ["extremely-long-category", "another-long-one"] * 5,
                "b": ["1", "2"] * 5,
            }
        )
        assert pc_bytes(long, ("a", "b")) > pc_bytes(short, ("a", "b"))


class TestLabelBytes:
    def test_positive_and_tracks_pc(self, figure2):
        small = build_label(figure2, ["gender"])
        large = build_label(figure2, ["gender", "race", "marital status"])
        assert 0 < label_bytes(small) < label_bytes(large)

    def test_consistent_with_serialization(self, figure2):
        label = build_label(figure2, ["gender", "race"])
        assert label_bytes(label) == len(
            label.to_json(indent=None).encode("utf-8")
        )


class TestByteBudgetSearch:
    def test_result_fits_budget(self, figure2):
        counter = PatternCounter(figure2)
        budget = 400
        result = find_optimal_label_bytes(counter, budget)
        assert pc_bytes(counter, result.attributes) <= budget

    def test_tighter_budget_never_better(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        loose = find_optimal_label_bytes(counter, 3000)
        tight = find_optimal_label_bytes(counter, 600)
        assert loose.objective_value <= tight.objective_value + 1e-9

    def test_budget_validation(self, figure2):
        with pytest.raises(ValueError, match="positive"):
            find_optimal_label_bytes(figure2, 0)

    def test_byte_and_count_budgets_can_differ(self, figure2):
        """Long value strings make byte budgets pick differently than
        |PC| budgets of the 'same' size."""
        counter = PatternCounter(figure2)
        by_bytes = find_optimal_label_bytes(counter, 250)
        # The chosen subset must fit 250 bytes even though its |PC| may
        # differ from what a count-based bound would allow.
        assert pc_bytes(counter, by_bytes.attributes) <= 250
