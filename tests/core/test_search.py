"""Unit tests for :mod:`repro.core.search` (Section III, Algorithm 1)."""

import pytest

from repro.core.counts import PatternCounter
from repro.core.errors import Objective, evaluate_label
from repro.core.patternsets import full_pattern_set
from repro.core.search import (
    NoFeasibleLabelError,
    SearchTimeout,
    find_optimal_label,
    naive_search,
    top_down_search,
)


class TestNaiveSearch:
    def test_finds_zero_error_label_on_figure2(self, figure2):
        result = naive_search(figure2, bound=5)
        assert result.objective_value == 0.0
        assert result.attributes == ("age group", "marital status")
        assert result.label.size <= 5

    def test_example_3_7_candidates(self, figure2):
        """Bound 5: exactly {gender, age group} and {age group, marital
        status} fit (label sizes 4 and 3)."""
        result = naive_search(figure2, bound=5)
        assert set(result.candidates) == {
            ("gender", "age group"),
            ("age group", "marital status"),
        }

    def test_level_cutoff_is_sound(self, figure2):
        """Exhaustive check: the naive result is the true optimum."""
        import itertools

        counter = PatternCounter(figure2)
        pattern_set = full_pattern_set(counter)
        result = naive_search(counter, bound=8, pattern_set=pattern_set)
        names = figure2.attribute_names
        best = float("inf")
        for size in range(2, 5):
            for combo in itertools.combinations(names, size):
                if counter.label_size(combo) <= 8:
                    err = evaluate_label(counter, combo, pattern_set).max_abs
                    best = min(best, err)
        assert result.objective_value == pytest.approx(best)

    def test_no_feasible_label_raises(self, figure2):
        with pytest.raises(NoFeasibleLabelError):
            naive_search(figure2, bound=2)

    def test_invalid_bound_rejected(self, figure2):
        with pytest.raises(ValueError, match="positive"):
            naive_search(figure2, bound=0)

    def test_time_limit_raises_search_timeout(self, compas_small):
        with pytest.raises(SearchTimeout) as exc:
            naive_search(compas_small, bound=60, time_limit_seconds=1e-4)
        assert exc.value.stats.subsets_examined > 0

    def test_min_size_one_allows_singletons(self, figure2):
        result = naive_search(figure2, bound=2, min_size=1)
        assert len(result.attributes) == 1
        assert result.label.size <= 2

    def test_stats_populated(self, figure2):
        result = naive_search(figure2, bound=5)
        stats = result.stats
        assert stats.subsets_examined >= len(result.candidates)
        assert stats.labels_evaluated == len(result.candidates)
        assert stats.total_seconds >= 0.0


class TestTopDownSearch:
    def test_matches_naive_error_on_figure2(self, figure2):
        for bound in (4, 5, 8, 12):
            naive = naive_search(figure2, bound=bound)
            heuristic = top_down_search(figure2, bound=bound)
            assert heuristic.objective_value <= naive.objective_value + 1e-9

    def test_candidates_form_an_antichain(self, compas_small):
        result = top_down_search(compas_small, bound=30)
        candidate_sets = [set(c) for c in result.candidates]
        for i, left in enumerate(candidate_sets):
            for right in candidate_sets[i + 1 :]:
                assert not left < right and not right < left

    def test_all_candidates_fit_bound(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        result = top_down_search(counter, bound=40)
        for candidate in result.candidates:
            assert counter.label_size(candidate) <= 40

    def test_examines_fewer_subsets_than_naive(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        naive = naive_search(counter, 50, pattern_set=pattern_set)
        optimized = top_down_search(counter, 50, pattern_set=pattern_set)
        assert (
            optimized.stats.subsets_examined < naive.stats.subsets_examined
        )

    def test_prune_parents_ablation_gives_same_best_error(
        self, bluenile_small
    ):
        counter = PatternCounter(bluenile_small)
        pruned = top_down_search(counter, 40, prune_parents=True)
        unpruned = top_down_search(counter, 40, prune_parents=False)
        # Pruning only removes dominated candidates; by Prop. 3.2 the
        # superset's error is no worse in practice, so optima coincide.
        assert pruned.objective_value <= unpruned.objective_value + 1e-9
        assert len(pruned.candidates) <= len(unpruned.candidates)

    def test_no_feasible_label_raises(self, figure2):
        with pytest.raises(NoFeasibleLabelError):
            top_down_search(figure2, bound=2)

    def test_generates_each_node_at_most_once(self, figure2):
        """Proposition 3.8 at the search level."""
        counter = PatternCounter(figure2)
        result = top_down_search(counter, bound=1000)
        # 4 attributes: subsets of size >= 2 number C(4,2)+C(4,3)+C(4,4)=11.
        assert result.stats.subsets_examined == 11

    def test_deterministic(self, bluenile_small):
        first = top_down_search(bluenile_small, 30)
        second = top_down_search(bluenile_small, 30)
        assert first.attributes == second.attributes
        assert first.objective_value == second.objective_value


class TestObjectives:
    @pytest.mark.parametrize(
        "objective",
        [Objective.MAX_ABS, Objective.MEAN_ABS, Objective.MAX_Q, Objective.MEAN_Q],
    )
    def test_all_objectives_supported(self, figure2, objective):
        result = top_down_search(figure2, 8, objective=objective)
        assert result.objective is objective
        assert result.objective_value == pytest.approx(
            objective.of(result.summary)
        )

    def test_objective_changes_choice_possible(self, creditcard_small):
        """q-error and max-abs objectives may pick different subsets;
        both must be drawn from the same candidate pool."""
        by_abs = top_down_search(
            creditcard_small, 30, objective=Objective.MAX_ABS
        )
        by_q = top_down_search(
            creditcard_small, 30, objective=Objective.MEAN_Q
        )
        assert set(by_q.candidates) == set(by_abs.candidates)


class TestFindOptimalLabel:
    def test_dispatch(self, figure2):
        top_down = find_optimal_label(figure2, 5, algorithm="top-down")
        naive = find_optimal_label(figure2, 5, algorithm="naive")
        assert top_down.objective_value == naive.objective_value

    def test_unknown_algorithm_rejected(self, figure2):
        with pytest.raises(ValueError, match="unknown algorithm"):
            find_optimal_label(figure2, 5, algorithm="quantum")

    def test_result_repr(self, figure2):
        result = find_optimal_label(figure2, 5)
        assert "max-abs" in repr(result)
