"""Fine-grained search behaviour: tie-breaking, size_fn hook, stats split."""

import pytest

from repro import PatternCounter, full_pattern_set
from repro.core.search import naive_search, top_down_search


class TestTieBreaking:
    def test_smaller_subset_wins_ties(self, figure2):
        """Among equal-error candidates the search prefers fewer
        attributes, then attribute order — so results are deterministic
        across set-iteration orders."""
        results = [top_down_search(figure2, 12) for _ in range(3)]
        attributes = {r.attributes for r in results}
        assert len(attributes) == 1

    def test_naive_and_topdown_agree_under_ties(self, figure2):
        naive = naive_search(figure2, 12)
        top = top_down_search(figure2, 12)
        assert naive.objective_value == pytest.approx(top.objective_value)


class TestSizeFnHook:
    def test_custom_size_function_changes_feasibility(self, figure2):
        counter = PatternCounter(figure2)
        pattern_set = full_pattern_set(counter)
        # A size function charging 10x makes fewer subsets feasible.
        inflated = top_down_search(
            counter,
            40,
            pattern_set=pattern_set,
            size_fn=lambda s: 10 * counter.label_size(s),
        )
        normal = top_down_search(counter, 40, pattern_set=pattern_set)
        for candidate in inflated.candidates:
            assert 10 * counter.label_size(candidate) <= 40
        # Under the default size, the full attribute set fits and the
        # antichain collapses to it; the inflated search cannot reach it.
        assert normal.candidates == [tuple(figure2.attribute_names)]
        assert tuple(figure2.attribute_names) not in inflated.candidates

    def test_constant_size_fn_explores_everything(self, figure2):
        counter = PatternCounter(figure2)
        result = top_down_search(
            counter, 5, size_fn=lambda s: 1
        )
        # All 11 subsets of size >= 2 fit; the lone maximal one survives
        # parent pruning.
        assert result.stats.subsets_examined == 11
        assert result.candidates == [tuple(figure2.attribute_names)]


class TestStatsSplit:
    def test_search_and_evaluation_times_recorded(self, compas_small):
        result = top_down_search(compas_small, 30)
        stats = result.stats
        assert stats.search_seconds > 0.0
        assert stats.evaluation_seconds > 0.0
        assert stats.total_seconds == pytest.approx(
            stats.search_seconds + stats.evaluation_seconds
        )

    def test_evaluation_share_substantial(self, compas_small):
        """Section IV-C: finding the best label among candidates is a
        substantial share of total time (62.6% / 18% / 44.4% on the
        paper's datasets)."""
        result = top_down_search(compas_small, 30)
        share = (
            result.stats.evaluation_seconds / result.stats.total_seconds
        )
        assert 0.05 < share < 1.0
