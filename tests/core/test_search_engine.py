"""Unit tests for the unified search engine (driver, new strategies,
unified deadlines, batched sizing kernel)."""

import itertools

import numpy as np
import pytest

from repro import PatternCounter, ShardedPatternCounter
from repro.core.search import (
    NoFeasibleLabelError,
    SearchDriver,
    SearchTimeout,
    anytime_search,
    beam_search,
    find_optimal_label,
    naive_search,
    top_down_search,
)


class FakeClock:
    """Deterministic injectable clock for deadline-phase tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestUnifiedDeadlines:
    def test_naive_timeout_carries_sizing_stats(self, compas_small):
        with pytest.raises(SearchTimeout) as exc:
            naive_search(compas_small, bound=60, time_limit_seconds=1e-9)
        assert exc.value.phase == "sizing"
        assert exc.value.stats.subsets_examined > 0
        assert exc.value.stats.search_seconds > 0.0

    def test_top_down_honors_time_limit(self, compas_small):
        """Regression: top_down_search used to have no wall-clock limit
        at all."""
        with pytest.raises(SearchTimeout) as exc:
            top_down_search(
                compas_small, bound=30, time_limit_seconds=1e-9
            )
        assert exc.value.stats.subsets_examined > 0

    def test_deadline_covers_evaluation_phase(self, figure2):
        """Regression: the naive deadline used to stop at the sizing
        phase — a search could overrun its budget inside candidate
        evaluation unchecked.  Driven by a fake clock: sizing happens
        inside the budget, the clock then jumps past it, and the
        evaluation loop must abort with partial evaluation stats."""
        clock = FakeClock()
        counter = PatternCounter(figure2)
        driver = SearchDriver(
            counter, bound=30, time_limit_seconds=5.0, clock=clock
        )
        level = list(
            itertools.combinations(figure2.attribute_names, 2)
        )
        feasible = driver.prune_to_bound(level)
        assert len(feasible) >= 2  # enough to abort mid-way
        clock.now = 10.0  # past the deadline, before evaluation
        with pytest.raises(SearchTimeout) as exc:
            driver.select_best(feasible)
        assert exc.value.phase == "evaluation"
        assert exc.value.stats.labels_evaluated >= 1
        assert exc.value.stats.subsets_examined == len(level)

    def test_beam_honors_time_limit(self, compas_small):
        with pytest.raises(SearchTimeout):
            beam_search(compas_small, bound=30, time_limit_seconds=1e-9)

    def test_anytime_never_raises_on_timeout(self, compas_small):
        result = anytime_search(
            compas_small, bound=30, time_limit_seconds=1e-9
        )
        assert result.stats.labels_evaluated >= 1
        assert result.is_exact is False
        assert (
            PatternCounter(compas_small).label_size(result.attributes)
            <= 30
        )


class TestBeamSearch:
    def test_unlimited_width_matches_naive(self, bluenile_small):
        reference = naive_search(bluenile_small, 40)
        beam = beam_search(bluenile_small, 40)
        assert beam.attributes == reference.attributes
        assert beam.objective_value == reference.objective_value
        assert beam.label.to_json() == reference.label.to_json()
        assert beam.is_exact

    def test_width_one_truncates_and_flags(self, bluenile_small):
        narrow = beam_search(bluenile_small, 100, beam_width=1)
        wide = beam_search(bluenile_small, 100)
        assert narrow.stats.labels_evaluated < wide.stats.labels_evaluated
        assert narrow.is_exact is False
        # Heuristic but never infeasible, never better than exhaustive.
        assert narrow.objective_value >= wide.objective_value - 1e-12

    def test_invalid_width_rejected(self, figure2):
        with pytest.raises(ValueError, match="beam_width"):
            beam_search(figure2, 5, beam_width=0)

    def test_no_feasible_label_raises(self, figure2):
        with pytest.raises(NoFeasibleLabelError):
            beam_search(figure2, bound=2)


class TestAnytimeSearch:
    def test_generous_budget_is_exact(self, figure2):
        reference = naive_search(figure2, 8)
        anytime = anytime_search(figure2, 8)
        assert anytime.is_exact
        assert anytime.attributes == reference.attributes
        assert anytime.label.to_json() == reference.label.to_json()

    def test_candidate_budget_respected(self, bluenile_small):
        result = anytime_search(bluenile_small, 40, max_candidates=3)
        assert result.stats.labels_evaluated <= 3
        assert result.is_exact is False
        assert "approximate" in repr(result)

    def test_invalid_budget_rejected(self, figure2):
        with pytest.raises(ValueError, match="max_candidates"):
            anytime_search(figure2, 8, max_candidates=0)

    def test_no_feasible_label_raises_despite_budget(self, figure2):
        with pytest.raises(NoFeasibleLabelError):
            anytime_search(figure2, bound=2, max_candidates=1)


class TestFindOptimalLabelRegistry:
    def test_new_strategies_reachable(self, figure2):
        """Regression: dispatch used to be hardcoded to
        {'top-down', 'naive'}; it now routes through the registry."""
        reference = find_optimal_label(figure2, 5, algorithm="naive")
        for algorithm in ("beam", "anytime"):
            result = find_optimal_label(figure2, 5, algorithm=algorithm)
            assert result.objective_value == reference.objective_value

    def test_strategy_options_forwarded(self, bluenile_small):
        result = find_optimal_label(
            bluenile_small, 40, algorithm="beam", beam_width=1
        )
        assert result.is_exact is False

    def test_unknown_algorithm_lists_registered(self, figure2):
        with pytest.raises(ValueError, match="unknown algorithm") as exc:
            find_optimal_label(figure2, 5, algorithm="quantum")
        message = str(exc.value)
        for name in ("naive", "top_down", "beam", "anytime"):
            assert name in message

    def test_non_search_strategy_rejected(self, figure2):
        with pytest.raises(ValueError, match="does not run a label search"):
            find_optimal_label(figure2, 5, algorithm="greedy_flexible")

    def test_bad_option_is_a_config_error(self, figure2):
        with pytest.raises(ValueError, match="does not accept"):
            find_optimal_label(
                figure2, 5, algorithm="naive", beam_width=3
            )


class TestSizingKernel:
    def test_driver_falls_back_without_kernel(self, figure2):
        """Minimal third-party counter-likes (no ``label_size_many``)
        still work through the scalar loop."""

        class MinimalCounter:
            def __init__(self, counter):
                self._counter = counter

            def __getattr__(self, name):
                if name == "label_size_many":
                    raise AttributeError(name)
                return getattr(self._counter, name)

        counter = MinimalCounter(PatternCounter(figure2))
        assert getattr(counter, "label_size_many", None) is None
        result = top_down_search(counter, 5)
        reference = top_down_search(figure2, 5)
        assert result.attributes == reference.attributes
        assert result.label.to_json() == reference.label.to_json()

    def test_size_many_counts_and_filters(self, figure2):
        counter = PatternCounter(figure2)
        driver = SearchDriver(counter, bound=5)
        level = list(itertools.combinations(figure2.attribute_names, 2))
        sizes = driver.size_many(level)
        assert driver.stats.subsets_examined == len(level)
        expected = [counter.label_size(s) for s in level]
        assert list(sizes) == expected
        assert driver.prune_to_bound(level) == [
            s for s, z in zip(level, expected) if z <= 5
        ]

    def test_empty_subset_matches_scalar(self, figure2):
        """Regression: the batched kernel must agree with the scalar
        path on the empty attribute set too (reachable via
        ``naive_search(..., min_size=0)``)."""
        counter = PatternCounter(figure2)
        names = figure2.attribute_names
        expected = [counter.label_size(s) for s in [(), (names[0],)]]
        assert list(counter.label_size_many([(), (names[0],)])) == expected
        assert counter.distinct_keys(()) is None
        sharded = ShardedPatternCounter.from_dataset(figure2, 2)
        assert list(sharded.label_size_many([(), (names[0],)])) == expected

    def test_sharded_kernel_matches_scalar(self, bluenile_small):
        names = bluenile_small.attribute_names
        subsets = [
            c for k in (1, 2, 3) for c in itertools.combinations(names, k)
        ]
        expected = [
            PatternCounter(bluenile_small).label_size(s) for s in subsets
        ]
        sharded = ShardedPatternCounter.from_dataset(bluenile_small, 3)
        assert list(sharded.label_size_many(subsets)) == expected
        # and again from the warm cache
        assert list(sharded.label_size_many(subsets)) == expected

    def test_kernel_does_not_corrupt_column_cache(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        names = bluenile_small.attribute_names
        counter.label_size_many([(names[0], names[1])])
        frozen = counter._columns64[names[0]][0].copy()
        counter.label_size_many(
            [(names[0],), (names[0], names[2]), (names[0], names[1])]
        )
        np.testing.assert_array_equal(
            counter._columns64[names[0]][0], frozen
        )

    def test_distinct_keys_merge_is_exact(self, bluenile_small):
        subset = bluenile_small.attribute_names[:2]
        single = PatternCounter(bluenile_small)
        keys = single.distinct_keys(subset)
        assert keys is not None and keys.size == single.label_size(subset)
        sharded = ShardedPatternCounter.from_dataset(bluenile_small, 4)
        merged = np.unique(
            np.concatenate(
                [
                    PatternCounter(shard).distinct_keys(subset)
                    for shard in sharded.shards
                ]
            )
        )
        np.testing.assert_array_equal(merged, keys)


class TestSessionThreading:
    def test_fit_with_anytime_budget(self, bluenile_small):
        from repro import LabelingSession

        session = LabelingSession.fit(
            bluenile_small,
            40,
            strategy="anytime",
            max_candidates=2,
        )
        assert session.strategy == "anytime"
        assert session.result is not None
        assert session.result.is_exact is False

    def test_fit_with_beam_width(self, bluenile_small):
        from repro import LabelingSession

        session = LabelingSession.fit(
            bluenile_small, 40, strategy="beam", beam_width=2
        )
        assert session.strategy == "beam"
        assert session.size <= 40
