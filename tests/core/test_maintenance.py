"""Tests for incremental label maintenance."""

import numpy as np
import pytest

from repro import Dataset, PatternCounter, build_label
from repro.core.maintenance import (
    LabelMaintainer,
    apply_deletes,
    apply_inserts,
)
from repro.datasets import load_dataset


@pytest.fixture
def base_and_batch(figure2):
    batch = Dataset.from_rows(
        ["gender", "age group", "race", "marital status"],
        [
            ("Female", "under 20", "Hispanic", "single"),
            ("Male", "20-39", "Caucasian", "married"),
            ("Male", "20-39", "Caucasian", "married"),
        ],
        domains={
            name: figure2.schema[name].categories
            for name in figure2.attribute_names
        },
    )
    return figure2, batch


class TestApplyInserts:
    def test_matches_label_of_concatenated_data(self, base_and_batch):
        data, batch = base_and_batch
        label = build_label(data, ["age group", "marital status"])
        updated = apply_inserts(label, batch)
        reference = build_label(
            data.concat(batch), ["age group", "marital status"]
        )
        assert updated.pc == reference.pc
        assert updated.vc == reference.vc
        assert updated.total == reference.total

    def test_new_combination_appears(self, base_and_batch):
        data, batch = base_and_batch
        label = build_label(data, ["gender", "marital status"])
        assert ("Male", "married") in build_label(
            data, ["gender", "marital status"]
        ).pc
        updated = apply_inserts(label, batch)
        assert updated.pc[("Male", "married")] == label.pc[
            ("Male", "married")
        ] + 2

    def test_column_order_irrelevant(self, base_and_batch):
        data, batch = base_and_batch
        shuffled = batch.select(
            ["marital status", "gender", "race", "age group"]
        )
        label = build_label(data, ["gender"])
        updated = apply_inserts(label, shuffled)
        assert updated.total == 21

    def test_wrong_schema_rejected(self, figure2):
        label = build_label(figure2, ["gender"])
        wrong = Dataset.from_columns({"x": ["1"]})
        with pytest.raises(ValueError, match="exactly the labeled"):
            apply_inserts(label, wrong)

    def test_empty_label_updates_total_and_vc(self, base_and_batch):
        data, batch = base_and_batch
        label = build_label(data, [])
        updated = apply_inserts(label, batch)
        assert updated.total == 21
        assert updated.vc["gender"]["Male"] == 11


class TestApplyDeletes:
    def test_insert_then_delete_roundtrip(self, base_and_batch):
        data, batch = base_and_batch
        label = build_label(data, ["age group", "marital status"])
        roundtrip = apply_deletes(apply_inserts(label, batch), batch)
        assert roundtrip.pc == label.pc
        assert roundtrip.vc == label.vc
        assert roundtrip.total == label.total

    def test_roundtrip_with_new_values_is_byte_identical(self, figure2):
        """Regression for the ``counts[value] = 0`` VC bug: a batch that
        introduces *new* domain values and is then deleted must leave the
        maintained label equal to a fresh ``build_label`` on the final
        data — including ``vc_size``, serialization, and rendering, which
        all diverged while 0-count VC entries were kept."""
        label = build_label(figure2, ["age group", "marital status"])
        batch = Dataset.from_rows(
            ["gender", "age group", "race", "marital status"],
            [
                ("Nonbinary", "40+", "Asian", "widowed"),
                ("Male", "40+", "Asian", "married"),
            ],
        )
        roundtrip = apply_deletes(apply_inserts(label, batch), batch)
        reference = build_label(figure2, ["age group", "marital status"])
        assert roundtrip.pc == reference.pc
        assert roundtrip.vc == reference.vc
        assert roundtrip.vc_size == reference.vc_size
        assert roundtrip.total == reference.total
        assert roundtrip.to_json() == reference.to_json()

    def test_deleting_all_of_a_value_drops_its_vc_entry(self, figure2):
        """VC mirrors PC: a count driven to zero is dropped, not stored."""
        label = build_label(figure2, ["age group", "marital status"])
        singles = figure2.filter_equals("marital status", "single")
        updated = apply_deletes(label, singles)
        assert "single" not in updated.vc["marital status"]
        # In Figure 2 every "under 20" tuple is single, so that value
        # vanishes too — exactly like a fresh build on the remaining data.
        assert "under 20" not in updated.vc["age group"]
        assert updated.vc_size == label.vc_size - 2
        # PC/total parity against a fresh build on the remaining rows.
        # (VC is compared by the drop assertions above instead: `take`
        # preserves figure2's full schema domains, so the fresh build
        # would carry 0-count entries for the vanished values — the
        # maintained label tracks the *observed-domain* form, the one a
        # from-scratch ingest of the remaining data produces.)
        reference = build_label(
            figure2.take(
                [
                    i
                    for i in range(figure2.n_rows)
                    if figure2.row(i)["marital status"] != "single"
                ]
            ),
            ["age group", "marital status"],
        )
        assert updated.pc == reference.pc
        assert updated.total == reference.total

    def test_zero_count_delta_does_not_invent_entries(self, figure2):
        """A batch whose schema pins a wider domain than it uses must not
        create 0-count VC entries for the unused values."""
        wide_domains = {
            name: tuple(figure2.schema[name].categories) + (f"ghost-{name}",)
            for name in figure2.attribute_names
        }
        batch = Dataset.from_rows(
            ["gender", "age group", "race", "marital status"],
            [("Male", "20-39", "Caucasian", "married")],
            domains=wide_domains,
        )
        label = build_label(figure2, ["gender"])
        updated = apply_inserts(label, batch)
        for name in figure2.attribute_names:
            assert f"ghost-{name}" not in updated.vc[name]

    def test_combination_vanishing_removes_key(self, figure2):
        label = build_label(figure2, ["age group", "marital status"])
        singles = figure2.filter_equals("marital status", "single")
        updated = apply_deletes(label, singles)
        assert ("under 20", "single") not in updated.pc

    def test_overdelete_rejected(self, base_and_batch):
        data, batch = base_and_batch
        label = build_label(data, ["age group", "marital status"])
        doubled = batch.concat(batch).concat(batch).concat(batch)
        with pytest.raises(ValueError, match="below zero"):
            apply_deletes(label, doubled.concat(doubled))


class TestEmptyBatches:
    """0-row update batches must be validated no-ops, not crashes."""

    def test_empty_insert_returns_same_label(self, figure2):
        label = build_label(figure2, ["gender", "race"])
        assert apply_inserts(label, figure2.head(0)) is label

    def test_empty_delete_returns_same_label(self, figure2):
        label = build_label(figure2, ["gender", "race"])
        assert apply_deletes(label, figure2.head(0)) is label

    def test_empty_batch_still_validates_attributes(self, figure2):
        label = build_label(figure2, ["gender"])
        wrong = Dataset.from_columns({"x": []})
        with pytest.raises(ValueError, match="exactly the labeled"):
            apply_inserts(label, wrong)
        with pytest.raises(ValueError, match="exactly the labeled"):
            apply_deletes(label, wrong)

    def test_maintainer_ignores_empty_batches(self, figure2):
        maintainer = LabelMaintainer(figure2, bound=30, check_every=1)
        before = maintainer.label
        status = maintainer.insert(figure2.head(0))
        assert status.label is before
        assert not status.stale and not status.rebuilt
        assert status.summary is None
        assert maintainer.dataset.n_rows == figure2.n_rows


class TestLabelMaintainer:
    def test_tracks_inserts_exactly(self, rng):
        data = load_dataset("bluenile", n_rows=2000, seed=3)
        maintainer = LabelMaintainer(data, bound=30, check_every=100)
        batch = load_dataset("bluenile", n_rows=200, seed=4)
        status = maintainer.insert(batch)
        reference = build_label(
            maintainer.dataset, maintainer.label.attributes
        )
        assert status.label.pc == reference.pc
        assert status.label.total == 2200

    def test_drift_triggers_rebuild(self):
        """Feeding rows from a very different distribution must
        eventually flag the label stale and rebuild it."""
        data = load_dataset("bluenile", n_rows=1500, seed=3)
        maintainer = LabelMaintainer(
            data, bound=30, drift_factor=1.1, check_every=1
        )
        rng = np.random.default_rng(9)
        from repro.datasets import append_random_tuples

        rebuilt = False
        for _ in range(6):
            noise = append_random_tuples(
                data.head(0), 800, rng
            )
            status = maintainer.insert(noise)
            rebuilt = rebuilt or status.rebuilt
        assert rebuilt

    def test_size_overflow_triggers_rebuild(self):
        """Inserts that introduce unseen combinations push |PC| past the
        budget, forcing a re-search that picks a smaller subset."""
        domains = {
            "a": tuple(f"a{i}" for i in range(6)),
            "b": tuple(f"b{i}" for i in range(6)),
            "c": ("z", "w"),
        }
        # 10 distinct (a, b) combos, c constant: S = {a, b} is exact
        # (error 0) at |PC| = 10.
        pairs = [(i, i) for i in range(6)] + [(i, i + 1) for i in range(4)]
        rows = [(f"a{i}", f"b{j}", "z") for i, j in pairs] * 3
        data = Dataset.from_rows(["a", "b", "c"], rows, domains=domains)
        maintainer = LabelMaintainer(
            data, bound=10, drift_factor=50.0, check_every=100
        )
        # removeParents keeps the maximal fitting subset: {a, b, c}
        # (c is constant, so it costs nothing).
        assert {"a", "b"} <= set(maintainer.label.attributes)
        assert maintainer.label.size == 10

        fresh_pairs = [(i, (i + 2) % 6) for i in range(6)]
        fresh = Dataset.from_rows(
            ["a", "b", "c"],
            [(f"a{i}", f"b{j}", "z") for i, j in fresh_pairs],
            domains=domains,
        )
        status = maintainer.insert(fresh)
        assert status.stale and status.rebuilt
        assert maintainer.label.size <= 10
        assert not {"a", "b"} <= set(maintainer.label.attributes)

    def test_parameter_validation(self, figure2):
        with pytest.raises(ValueError, match="drift_factor"):
            LabelMaintainer(figure2, bound=5, drift_factor=0.5)
        with pytest.raises(ValueError, match="check_every"):
            LabelMaintainer(figure2, bound=5, check_every=0)


class TestShardedMaintainer:
    """``shards > 1`` routes counting through ShardedPatternCounter and
    absorbs each insert batch as a new shard instead of a full rebind."""

    def test_matches_monolithic_maintainer(self):
        data = load_dataset("bluenile", n_rows=1200, seed=3)
        mono = LabelMaintainer(data, bound=30, check_every=2)
        sharded = LabelMaintainer(data, bound=30, check_every=2, shards=3)
        assert sharded.label == mono.label
        for seed in (4, 5, 6):
            batch = load_dataset("bluenile", n_rows=150, seed=seed)
            mono_status = mono.insert(batch)
            sharded_status = sharded.insert(batch)
            assert sharded_status.label == mono_status.label
            assert sharded_status.stale == mono_status.stale
            assert sharded_status.rebuilt == mono_status.rebuilt
            if mono_status.summary is not None:
                assert sharded_status.summary.max_abs == pytest.approx(
                    mono_status.summary.max_abs
                )

    def test_insert_becomes_new_shard(self):
        from repro.core.sharding import ShardedPatternCounter

        data = load_dataset("bluenile", n_rows=600, seed=3)
        maintainer = LabelMaintainer(
            data, bound=30, check_every=100, shards=2
        )
        counter = maintainer._counter
        assert isinstance(counter, ShardedPatternCounter)
        assert counter.n_shards == 2
        batch = load_dataset("bluenile", n_rows=100, seed=4)
        maintainer.insert(batch)
        assert counter.n_shards == 3
        assert maintainer.dataset.n_rows == 700

    def test_shards_validation(self, figure2):
        with pytest.raises(ValueError, match="shards"):
            LabelMaintainer(figure2, bound=30, shards=0)


class TestMaintainerCounterFreshness:
    """The maintainer's long-lived counter must track dataset swaps.

    Regression guard for the stale-cache bug: the maintainer now keeps
    one PatternCounter for its lifetime and rebinds it on every insert,
    so drift checks and rebuilds must see post-insert counts — not the
    fractions/joint tables of the snapshot the maintainer started from.
    """

    def test_drift_summary_matches_fresh_evaluation(self):
        data = load_dataset("bluenile", n_rows=1200, seed=3)
        maintainer = LabelMaintainer(data, bound=30, check_every=1)
        batch = load_dataset("bluenile", n_rows=300, seed=8)
        status = maintainer.insert(batch)
        assert status.summary is not None

        from repro.core.counts import PatternCounter
        from repro.core.errors import evaluate_label
        from repro.core.patternsets import full_pattern_set

        fresh = PatternCounter(maintainer.dataset)
        reference = evaluate_label(
            fresh, status.label, full_pattern_set(fresh)
        )
        assert status.summary.max_abs == pytest.approx(reference.max_abs)
        assert status.summary.mean_abs == pytest.approx(reference.mean_abs)

    def test_counter_rebinds_to_current_snapshot(self):
        data = load_dataset("bluenile", n_rows=800, seed=3)
        maintainer = LabelMaintainer(data, bound=30, check_every=100)
        before_rows = maintainer._counter.total_rows
        batch = load_dataset("bluenile", n_rows=150, seed=9)
        maintainer.insert(batch)
        assert before_rows == 800
        assert maintainer._counter.total_rows == 950
        assert maintainer._counter.dataset is maintainer.dataset
