"""Tests for the one-shot Markdown dataset report."""

import pytest

from repro.labeling.report import generate_report


@pytest.fixture(scope="module")
def report(compas_small):
    return generate_report(
        compas_small,
        dataset_name="compas-test",
        bound=30,
        sensitive_attributes=["Sex", "Race"],
        min_share=0.05,
    )


class TestGenerateReport:
    def test_fields_populated(self, report, compas_small):
        assert report.dataset_name == "compas-test"
        assert report.n_rows == compas_small.n_rows
        assert report.n_attributes == 17
        assert len(report.attribute_stats) == 17
        assert report.search_result.label.size <= 30
        assert report.warnings  # Hispanic women etc.

    def test_default_sensitive_attributes(self, compas_small):
        quick = generate_report(compas_small, bound=30)
        assert quick.search_result.attributes  # used as default audit set

    def test_markdown_structure(self, report):
        doc = report.to_markdown()
        assert doc.startswith("# Dataset report: compas-test")
        assert "## Attribute profile" in doc
        assert "## Pattern count-based label" in doc
        assert "## Fitness-for-use warnings" in doc
        assert "underrepresented" in doc

    def test_markdown_label_block_has_error_stats(self, report):
        doc = report.to_markdown()
        assert "max estimation error" in doc
        assert "| Error statistic | Value |" in doc

    def test_no_warnings_branch(self, figure2):
        quiet = generate_report(
            figure2,
            bound=10,
            sensitive_attributes=["gender"],
            min_share=0.0,
            max_share=0.99,
        )
        assert "No findings" in quiet.to_markdown()
