"""Unit tests for the fitness-for-use warnings."""

import pytest

from repro import Pattern, PatternCounter, build_label
from repro.dataset.table import Dataset
from repro.labeling.warnings import (
    WarningKind,
    find_correlated_attributes,
    find_skewed,
    find_underrepresented,
    profile_dataset,
)


@pytest.fixture
def skewed_data() -> Dataset:
    # 90% (x, 1), 8% (y, 1), 2% (y, 2): skew plus under-representation.
    rows = [("x", "1")] * 90 + [("y", "1")] * 8 + [("y", "2")] * 2
    return Dataset.from_rows(["a", "b"], rows)


class TestUnderrepresented:
    def test_flags_small_groups(self, skewed_data):
        warnings = find_underrepresented(
            skewed_data, ["a", "b"], min_share=0.05
        )
        flagged = {str(w.pattern) for w in warnings}
        assert any("y" in f and "2" in f for f in flagged)
        assert all(w.kind is WarningKind.UNDERREPRESENTED for w in warnings)

    def test_min_count_threshold(self, skewed_data):
        warnings = find_underrepresented(
            skewed_data, ["a", "b"], min_share=0.0, min_count=5
        )
        assert len(warnings) == 1
        assert warnings[0].count == 2

    def test_sorted_ascending_by_count(self, skewed_data):
        warnings = find_underrepresented(
            skewed_data, ["a", "b"], min_share=0.2
        )
        counts = [w.count for w in warnings]
        assert counts == sorted(counts)

    def test_from_label_checks_unseen_combinations(self, figure2):
        """Estimated warnings from a label include domain combinations
        absent from the data (they estimate near 0)."""
        label = build_label(figure2, ["age group", "marital status"])
        warnings = find_underrepresented(
            label, ["age group", "marital status"], min_share=0.05
        )
        assert all(w.estimated for w in warnings)
        patterns = {w.pattern for w in warnings}
        assert Pattern(
            {"age group": "under 20", "marital status": "married"}
        ) in patterns

    def test_compas_hispanic_women_flagged(self, compas_small):
        """The paper's motivating example: Hispanic women under-represented."""
        warnings = find_underrepresented(
            compas_small, ["Sex", "Race"], min_share=0.05
        )
        descriptions = [w.message for w in warnings]
        assert any(
            "Sex=Female" in d and "Race=Hispanic" in d for d in descriptions
        )


class TestSkewed:
    def test_flags_dominant_group(self, skewed_data):
        warnings = find_skewed(skewed_data, ["a"], max_share=0.5)
        assert len(warnings) == 1
        assert warnings[0].share == pytest.approx(0.9)
        assert warnings[0].kind is WarningKind.SKEWED

    def test_no_warning_below_threshold(self, skewed_data):
        assert not find_skewed(skewed_data, ["a"], max_share=0.95)

    def test_str_rendering(self, skewed_data):
        warning = find_skewed(skewed_data, ["a"], max_share=0.5)[0]
        assert "skewed" in str(warning)
        assert "90" in str(warning)


class TestCorrelated:
    def test_detects_functional_dependency(self):
        rows = [("x", "1")] * 50 + [("y", "2")] * 50
        data = Dataset.from_rows(["a", "b"], rows)
        warnings = find_correlated_attributes(data, min_deviation=0.1)
        assert len(warnings) == 1
        assert warnings[0].kind is WarningKind.CORRELATED
        assert warnings[0].share == pytest.approx(0.5, abs=0.01)

    def test_independent_attributes_not_flagged(self, rng):
        import numpy as np

        a = rng.choice(["x", "y"], size=4000)
        b = rng.choice(["1", "2"], size=4000)
        data = Dataset.from_columns({"a": list(a), "b": list(b)})
        assert not find_correlated_attributes(data, min_deviation=0.05)

    def test_attribute_filter(self, compas_small):
        warnings = find_correlated_attributes(
            compas_small,
            attributes=["DecileScore", "ScoreText"],
            min_deviation=0.1,
        )
        assert len(warnings) == 1

    def test_sorted_by_deviation(self, compas_small):
        warnings = find_correlated_attributes(
            compas_small,
            attributes=["DecileScore", "ScoreText", "Sex"],
            min_deviation=0.0,
        )
        shares = [w.share for w in warnings]
        assert shares == sorted(shares, reverse=True)


class TestProfile:
    def test_profile_combines_all_kinds(self, compas_small):
        warnings = profile_dataset(
            compas_small,
            ["Sex", "Race"],
            min_share=0.05,
            max_share=0.3,
            min_deviation=0.01,
        )
        kinds = {w.kind for w in warnings}
        assert WarningKind.UNDERREPRESENTED in kinds
        assert WarningKind.SKEWED in kinds
