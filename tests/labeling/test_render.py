"""Unit tests for the label-card renderers (Figure 1 layout)."""

import pytest

from repro import PatternCounter, build_label, evaluate_label
from repro.labeling.render import (
    render_label_html,
    render_label_markdown,
    render_label_text,
)


@pytest.fixture
def label_and_summary(figure2):
    counter = PatternCounter(figure2)
    label = build_label(counter, ["gender", "race"])
    summary = evaluate_label(counter, label)
    return label, summary


class TestTextCard:
    def test_contains_total_and_blocks(self, label_and_summary):
        label, summary = label_and_summary
        card = render_label_text(label, summary)
        assert "Total size: 18" in card
        assert "gender" in card and "race" in card
        assert "Stored combinations over: gender / race" in card
        assert "Maximal error" in card
        assert "Average error" in card
        assert "Standard deviation" in card

    def test_percentages_present(self, label_and_summary):
        label, _ = label_and_summary
        card = render_label_text(label)
        assert "%" in card

    def test_no_summary_omits_error_block(self, label_and_summary):
        label, _ = label_and_summary
        card = render_label_text(label)
        assert "Maximal error" not in card

    def test_empty_attribute_label_renders_vc_only(self, figure2):
        label = build_label(figure2, [])
        card = render_label_text(label)
        assert "Stored combinations" not in card
        assert "Total size: 18" in card

    def test_pc_rows_sorted_by_count(self, figure2):
        label = build_label(figure2, ["gender", "race"])
        card = render_label_text(label)
        lines = [l for l in card.splitlines() if "," in l]
        counts = []
        for line in lines:
            counts.append(int(line.split()[-2].replace(",", "")))
        assert counts == sorted(counts, reverse=True)


class TestMarkdownCard:
    def test_tables_present(self, label_and_summary):
        label, summary = label_and_summary
        card = render_label_markdown(label, summary)
        assert card.startswith("**Total size: 18**")
        assert "| Attribute | Value | Count | % |" in card
        assert "**Stored combinations (gender × race)**" in card
        assert "| Error statistic | Value |" in card

    def test_row_per_domain_value(self, label_and_summary):
        label, _ = label_and_summary
        card = render_label_markdown(label)
        # 2 + 2 + 3 + 3 VC rows.
        vc_rows = [
            line
            for line in card.splitlines()
            if line.startswith("|") and "Attribute" not in line
            and "---" not in line
        ]
        assert len(vc_rows) >= 10


class TestHtmlCard:
    def test_minimal_structure(self, label_and_summary):
        label, summary = label_and_summary
        html = render_label_html(label, summary)
        assert html.startswith("<div class='pcbl-label'>")
        assert html.count("<table>") == 3  # VC, PC, errors
        assert "</div>" in html

    def test_without_summary_two_tables(self, label_and_summary):
        label, _ = label_and_summary
        html = render_label_html(label)
        assert html.count("<table>") == 2
