"""Property-based tests for the extension modules.

Random relations again (shared strategies with
:mod:`tests.property.test_properties`), now exercising maintenance
round-trips, byte-size monotonicity, the Proposition 3.2 theorem, and
flexible-label invariants.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, PatternCounter, build_label
from repro.core.classify import check_proposition_3_2, classification_profile
from repro.core.flexlabel import FlexibleEstimator, greedy_flexible_label
from repro.core.maintenance import apply_deletes, apply_inserts
from repro.core.patternsets import full_pattern_set
from repro.core.sizing import pc_bytes

from tests.property.test_properties import dataset_and_subset, datasets

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(dataset_and_subset(), st.integers(0, 2**31 - 1))
def test_maintenance_insert_matches_rebuild(data_subset, seed):
    """apply_inserts(L_S(D), B) == L_S(D ∪ B) on random batches."""
    data, subset = data_subset
    rng = np.random.default_rng(seed)
    batch = data.sample(
        min(5, data.n_rows), rng, replace=True
    )
    label = build_label(data, subset)
    updated = apply_inserts(label, batch)
    reference = build_label(data.concat(batch), subset)
    assert updated.pc == reference.pc
    assert updated.vc == reference.vc
    assert updated.total == reference.total


@SETTINGS
@given(dataset_and_subset(), st.integers(0, 2**31 - 1))
def test_maintenance_insert_delete_roundtrip(data_subset, seed):
    data, subset = data_subset
    rng = np.random.default_rng(seed)
    batch = data.sample(min(4, data.n_rows), rng, replace=True)
    label = build_label(data, subset)
    roundtrip = apply_deletes(apply_inserts(label, batch), batch)
    assert roundtrip.pc == label.pc
    assert roundtrip.total == label.total


@SETTINGS
@given(datasets())
def test_pc_bytes_monotone(data):
    counter = PatternCounter(data)
    names = data.attribute_names
    for subset in itertools.combinations(names, 2):
        for extra in names:
            if extra in subset:
                continue
            bigger = tuple(sorted(subset + (extra,)))
            assert pc_bytes(counter, bigger) >= pc_bytes(counter, subset)


@SETTINGS
@given(datasets(min_rows=2))
def test_proposition_3_2_theorem_on_random_data(data):
    """The conditional Proposition 3.2 inequality is a theorem: zero
    violations on arbitrary random relations."""
    counter = PatternCounter(data)
    names = data.attribute_names
    subset = (names[0],)
    superset = tuple(names[:2])
    report = check_proposition_3_2(counter, subset, superset)
    assert report.holds


@SETTINGS
@given(dataset_and_subset())
def test_classification_consistent_with_full_label(data_subset):
    data, subset = data_subset
    counter = PatternCounter(data)
    profile = classification_profile(counter, subset)
    full = classification_profile(counter, data.attribute_names)
    assert full.n_exact == full.total
    assert profile.total == full.total


@SETTINGS
@given(datasets(min_rows=3), st.integers(1, 6))
def test_flexible_label_respects_budget_and_improves(data, bound):
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    if len(pattern_set) == 0:
        return
    label = greedy_flexible_label(counter, bound, pattern_set=pattern_set)
    assert label.size <= bound
    estimator = FlexibleEstimator(label)
    with_label = estimator.evaluate(pattern_set)
    empty = greedy_flexible_label(counter, 1, pattern_set=pattern_set)
    # More budget can only help the greedy construction's max error.
    if bound > 1:
        baseline = FlexibleEstimator(empty).evaluate(pattern_set)
        assert with_label.max_abs <= baseline.max_abs + 1e-9
