"""Parity properties of the batch kernel vs the scalar reference paths.

The batch counting engine (``PatternCounter.count_many``, the
``BatchLabelEvaluator`` error pass, the per-backend ``estimate_many``
implementations) must be *observably identical* to the per-pattern
scalar paths it replaces — the scalar paths are kept precisely to serve
as the executable specification.  Hypothesis generates random small
relations (optionally with missing values) and random mixed-arity
workloads, and every batch answer is checked against its scalar twin.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    LabelEstimator,
    Pattern,
    PatternCounter,
    build_label,
    evaluate_label,
)
from repro.api import RegistryError, make_estimator, registered_estimators
from repro.api.registry import estimate_many as registry_estimate_many
from repro.core.errors import BatchLabelEvaluator, evaluate_labels
from repro.core.pattern import OPS, Predicate
from repro.core.patternsets import PatternSet, full_pattern_set

# -- strategies -----------------------------------------------------------------


@st.composite
def datasets(draw, min_rows: int = 2, max_rows: int = 24, allow_missing=False):
    """A random small categorical relation with pinned domains."""
    n_attrs = draw(st.integers(2, 4))
    names = [f"A{i}" for i in range(n_attrs)]
    domain_sizes = [draw(st.integers(2, 3)) for _ in range(n_attrs)]
    n_rows = draw(st.integers(min_rows, max_rows))
    columns = {}
    for name, size in zip(names, domain_sizes):
        domain = [f"v{j}" for j in range(size)]
        columns[name] = draw(
            st.lists(
                st.sampled_from(domain + ([None] if allow_missing else [])),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
    domains = {
        name: tuple(f"v{j}" for j in range(size))
        for name, size in zip(names, domain_sizes)
    }
    return Dataset.from_columns(columns, domains=domains)


@st.composite
def workloads(draw, data: Dataset, min_patterns=1, max_patterns=12):
    """Random mixed-arity patterns over ``data``'s domains.

    Values are drawn from the *domains*, not from the rows, so the
    workload exercises zero-count patterns too.
    """
    names = list(data.attribute_names)
    schema = data.schema
    n_patterns = draw(st.integers(min_patterns, max_patterns))
    patterns = []
    for _ in range(n_patterns):
        arity = draw(st.integers(1, len(names)))
        attrs = draw(
            st.lists(
                st.sampled_from(names),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        patterns.append(
            Pattern(
                {
                    a: draw(st.sampled_from(list(schema[a].categories)))
                    for a in attrs
                }
            )
        )
    return patterns


@st.composite
def mixed_workloads(draw, data: Dataset, min_patterns=1, max_patterns=12):
    """Random patterns mixing equality bindings and range predicates.

    Each binding independently draws an operator from :data:`OPS`; the
    ``=`` draw keeps the historical equality shape, the comparison draws
    anchor a range predicate at a domain value (the ``v0``/``v1``/...
    string domains are totally ordered, so every operator is valid).
    """
    names = list(data.attribute_names)
    schema = data.schema
    n_patterns = draw(st.integers(min_patterns, max_patterns))
    patterns = []
    for _ in range(n_patterns):
        arity = draw(st.integers(1, len(names)))
        attrs = draw(
            st.lists(
                st.sampled_from(names),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        spec = {}
        for a in attrs:
            value = draw(st.sampled_from(list(schema[a].categories)))
            op = draw(st.sampled_from(OPS))
            spec[a] = value if op == "=" else Predicate(op, value)
        patterns.append(Pattern(spec))
    return patterns


@st.composite
def dataset_and_workload(draw, allow_missing=False):
    data = draw(datasets(allow_missing=allow_missing))
    return data, draw(workloads(data))


def _brute_count(data: Dataset, pattern: Pattern) -> int:
    """Row-by-row reference count via ``Pattern.matches_row``."""
    return sum(
        pattern.matches_row(data.row(i)) for i in range(data.n_rows)
    )


SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _subsets_of(draw, data: Dataset):
    names = list(data.attribute_names)
    k = draw(st.integers(1, len(names)))
    return tuple(
        draw(
            st.lists(
                st.sampled_from(names), min_size=k, max_size=k, unique=True
            )
        )
    )


# -- count_many == looped count -------------------------------------------------


@SETTINGS
@given(dataset_and_workload())
def test_count_many_matches_scalar_loop(data_workload):
    data, patterns = data_workload
    counter = PatternCounter(data)
    batch = counter.count_many(patterns)
    scalar = [counter.count(p) for p in patterns]
    assert list(batch) == scalar
    # Repeat batches go through the promoted key tables — still equal.
    assert list(counter.count_many(patterns)) == scalar


@SETTINGS
@given(dataset_and_workload(allow_missing=True))
def test_count_many_matches_scalar_loop_with_missing(data_workload):
    """Missing values never satisfy a pattern, on both paths."""
    data, patterns = data_workload
    counter = PatternCounter(data)
    assert list(counter.count_many(patterns)) == [
        counter.count(p) for p in patterns
    ]


@SETTINGS
@given(st.data())
def test_count_many_matches_brute_force_mixed(data_strategy):
    """Mixed equality/range workloads: kernel == scalar == brute force."""
    data = data_strategy.draw(datasets(allow_missing=True))
    patterns = data_strategy.draw(mixed_workloads(data))
    counter = PatternCounter(data)
    brute = [_brute_count(data, p) for p in patterns]
    assert [counter.count(p) for p in patterns] == brute
    assert list(counter.count_many(patterns)) == brute
    # Repeat batch: warm key tables and cumsum caches, still identical.
    assert list(counter.count_many(patterns)) == brute


# -- batched evaluate_label == scalar -------------------------------------------


@SETTINGS
@given(st.data())
def test_batched_evaluation_matches_scalar_estimator(data_strategy):
    """BatchLabelEvaluator == evaluate_label == per-pattern LabelEstimator."""
    data = data_strategy.draw(datasets())
    counter = PatternCounter(data)
    patterns = data_strategy.draw(workloads(data))
    pattern_set = PatternSet.from_patterns(counter, patterns)
    subset = _subsets_of(data_strategy.draw, data)

    scalar_estimator = LabelEstimator(build_label(counter, subset))
    scalar_estimates = np.array(
        [scalar_estimator.estimate(p) for p in patterns]
    )

    evaluator = BatchLabelEvaluator(counter, pattern_set)
    np.testing.assert_allclose(
        evaluator.estimates(tuple(sorted(subset))),
        scalar_estimates,
        rtol=1e-9,
        atol=1e-12,
    )

    batch_summary = evaluator.evaluate(subset)
    plain_summary = evaluate_label(counter, subset, pattern_set)
    for field in ("n_patterns", "max_abs", "mean_abs", "max_q", "mean_q"):
        assert getattr(batch_summary, field) == pytest.approx(
            getattr(plain_summary, field), rel=1e-9
        ), field


@SETTINGS
@given(st.data())
def test_evaluate_labels_matches_per_candidate_calls(data_strategy):
    data = data_strategy.draw(datasets())
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    candidates = [
        _subsets_of(data_strategy.draw, data) for _ in range(3)
    ]
    batch = evaluate_labels(counter, candidates, pattern_set)
    for candidate, summary in zip(candidates, batch):
        reference = evaluate_label(counter, candidate, pattern_set)
        assert summary.max_abs == pytest.approx(reference.max_abs, rel=1e-9)
        assert summary.mean_q == pytest.approx(reference.mean_q, rel=1e-9)


@SETTINGS
@given(st.data())
def test_batched_evaluation_matches_scalar_estimator_mixed(data_strategy):
    """Range-bearing pattern sets through the batch evaluation pass."""
    data = data_strategy.draw(datasets())
    counter = PatternCounter(data)
    patterns = data_strategy.draw(mixed_workloads(data))
    pattern_set = PatternSet.from_patterns(counter, patterns)
    subset = _subsets_of(data_strategy.draw, data)

    scalar_estimator = LabelEstimator(build_label(counter, subset))
    scalar_estimates = np.array(
        [scalar_estimator.estimate(p) for p in patterns]
    )

    evaluator = BatchLabelEvaluator(counter, pattern_set)
    np.testing.assert_allclose(
        evaluator.estimates(tuple(sorted(subset))),
        scalar_estimates,
        rtol=1e-9,
        atol=1e-12,
    )
    batch_summary = evaluator.evaluate(subset)
    plain_summary = evaluate_label(counter, subset, pattern_set)
    for field in ("n_patterns", "max_abs", "mean_abs", "max_q", "mean_q"):
        assert getattr(batch_summary, field) == pytest.approx(
            getattr(plain_summary, field), rel=1e-9
        ), field


# -- estimate vs estimate_many across every registered backend ------------------

_BACKEND_PARAMS = {
    # bound 12 > 3*3, the largest possible 2-attribute label of the
    # generated relations, so the search always finds a feasible subset.
    "label": {"bound": 12},
    "flexible": {"bound": 4},
    "multi_label": {"bound": 12, "n_labels": 2},
    "independence": {},
    "sampling": {"bound": 8, "seed": 0},
    "dephist": {},
    "postgres": {"seed": 0},
}


def test_backend_param_table_covers_registry():
    """Every built-in backend must appear in the parity sweep below.

    Subset, not equality: the registry is global and other tests (and
    deployments) legitimately register extra backends at runtime.
    """
    assert set(_BACKEND_PARAMS) <= set(registered_estimators())
    builtins = {
        "label",
        "flexible",
        "multi_label",
        "independence",
        "sampling",
        "dephist",
        "postgres",
    }
    assert builtins <= set(_BACKEND_PARAMS)


@SETTINGS
@given(dataset_and_workload())
def test_estimate_many_matches_estimate_for_all_backends(data_workload):
    data, patterns = data_workload
    for name, params in _BACKEND_PARAMS.items():
        try:
            estimator = make_estimator(name, data, **params)
        except RegistryError:
            continue  # optional dependency missing (e.g. networkx)
        scalar = [float(estimator.estimate(p)) for p in patterns]
        batched = registry_estimate_many(estimator, patterns)
        np.testing.assert_allclose(
            batched, scalar, rtol=1e-9, atol=1e-12, err_msg=name
        )


#: Backends whose scalar ``estimate`` understands range predicates; the
#: DBMS-statistics baselines (dephist, postgres) stay equality-only.
_RANGE_BACKENDS = ("label", "flexible", "multi_label", "independence", "sampling")


@SETTINGS
@given(st.data())
def test_estimate_many_matches_estimate_for_range_backends(data_strategy):
    data = data_strategy.draw(datasets())
    patterns = data_strategy.draw(mixed_workloads(data))
    for name in _RANGE_BACKENDS:
        estimator = make_estimator(name, data, **_BACKEND_PARAMS[name])
        scalar = [float(estimator.estimate(p)) for p in patterns]
        batched = registry_estimate_many(estimator, patterns)
        np.testing.assert_allclose(
            batched, scalar, rtol=1e-9, atol=1e-12, err_msg=name
        )


@SETTINGS
@given(datasets())
def test_tabular_pattern_set_dispatch_matches_scalar(data):
    """PatternSet dispatch (estimate_codes fast path) stays consistent."""
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    patterns = [pattern_set.pattern(i) for i in range(len(pattern_set))]
    for name in ("independence", "postgres", "sampling"):
        estimator = make_estimator(
            name, data, **_BACKEND_PARAMS[name]
        )
        via_set = registry_estimate_many(estimator, pattern_set)
        scalar = [float(estimator.estimate(p)) for p in patterns]
        np.testing.assert_allclose(
            via_set, scalar, rtol=1e-9, atol=1e-12, err_msg=name
        )
