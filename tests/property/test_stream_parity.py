"""Property: WAL-replayed streaming state equals synchronous maintenance.

For any random relation, subset, and batch sequence, a
:class:`~repro.stream.ingest.StreamIngestor` that replays the WAL of a
"crashed" ingestor must reconstruct byte-identical labels to applying
the same batches synchronously with
:func:`~repro.core.maintenance.apply_inserts` — the durability contract
of the streaming subsystem.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    PatternCounter,
    StreamConfig,
    build_label,
)
from repro.core.maintenance import apply_inserts
from repro.stream import StreamIngestor, WriteAheadLog

from tests.property.test_properties import dataset_and_subset

pytestmark = pytest.mark.stream

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def stream_case(draw):
    """A relation, a label subset, and 1–4 in-domain insert batches."""
    data, subset = draw(dataset_and_subset())
    names = list(data.attribute_names)
    domains = {name: list(data.schema[name].categories) for name in names}
    n_batches = draw(st.integers(1, 4))
    batches = []
    for _ in range(n_batches):
        n_rows = draw(st.integers(1, 6))
        rows = [
            [draw(st.sampled_from(domains[name])) for name in names]
            for _ in range(n_rows)
        ]
        batches.append(Dataset.from_rows(names, rows))
    return data, subset, batches


@SETTINGS
@given(stream_case())
def test_wal_replay_equals_synchronous_maintenance(case):
    data, subset, batches = case
    workdir = Path(tempfile.mkdtemp())
    try:
        config = StreamConfig(drift_threshold=None, fsync=False)
        ingestor = StreamIngestor(
            build_label(PatternCounter(data), subset),
            wal=WriteAheadLog(workdir / "wal", fsync=False),
            counter=PatternCounter(data),
            config=config,
        )
        reference = ingestor.label
        for batch in batches:
            ingestor.submit(inserted=batch)
            reference = apply_inserts(reference, batch)

        # The live path already matches the synchronous maintainer...
        assert ingestor.label.to_json() == reference.to_json()

        # ...and so does a cold replay of the WAL alone ("the crash").
        recovered = StreamIngestor(
            build_label(PatternCounter(data), subset),
            wal=WriteAheadLog(workdir / "wal", fsync=False),
            counter=PatternCounter(data),
            config=config,
            replay=True,
        )
        assert recovered.label.to_json() == reference.to_json()
        assert recovered.last_seq == len(batches)
        assert recovered.counter.total_rows == ingestor.counter.total_rows
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
