"""Parity properties of the sharded counting backend.

``ShardedPatternCounter`` answers by merging per-shard count tables;
the merge is exact because every quantity it serves is additive (counts,
joint tables, value counts) or union-stable (distinct-combination label
sizes).  These properties pin that claim against the single
``PatternCounter``, the executable specification: for random relations
(with and without missing values), every shard count in {1, 2, 3, 7},
and every dataset generator in ``repro.datasets``, the sharded answers
must be *identical* — not merely close.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    Pattern,
    PatternCounter,
    ShardedPatternCounter,
    build_label,
    top_down_search,
)
from repro.core.pattern import Predicate
from repro.core.workload import (
    random_mixed_workload,
    random_pattern_workload,
)
from repro.datasets import load_dataset

from tests.property.test_batch_parity import (
    _brute_count,
    datasets,
    mixed_workloads,
    workloads,
)

SHARD_COUNTS = (1, 2, 3, 7)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _sharded(data: Dataset, k: int) -> ShardedPatternCounter:
    return ShardedPatternCounter.from_dataset(data, k)


def _subsets_of(draw, data: Dataset):
    names = list(data.attribute_names)
    k = draw(st.integers(1, len(names)))
    return tuple(
        draw(
            st.lists(
                st.sampled_from(names), min_size=k, max_size=k, unique=True
            )
        )
    )


@SETTINGS
@given(st.data(), st.booleans())
def test_counts_match_single_counter(data_strategy, allow_missing):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    patterns = data_strategy.draw(workloads(data))
    single = PatternCounter(data)
    expected = list(single.count_many(patterns))
    for k in SHARD_COUNTS:
        sharded = _sharded(data, k)
        assert list(sharded.count_many(patterns)) == expected, k
        # Scalar path agrees too.
        assert [sharded.count(p) for p in patterns[:4]] == [
            single.count(p) for p in patterns[:4]
        ], k
        # Repeat batches (promoted per-shard key tables) stay equal.
        assert list(sharded.count_many(patterns)) == expected, k


@SETTINGS
@given(st.data(), st.booleans())
def test_joint_tables_match_single_counter(data_strategy, allow_missing):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    subset = _subsets_of(data_strategy.draw, data)
    single = PatternCounter(data)
    combos, counts = single.joint_table(subset)
    for k in SHARD_COUNTS:
        sharded_combos, sharded_counts = _sharded(data, k).joint_table(
            subset
        )
        # Identical content *and* identical (lexicographic) order: a
        # merged table is indistinguishable from a monolithic one.
        assert np.array_equal(combos, sharded_combos), k
        assert np.array_equal(counts, sharded_counts), k


@SETTINGS
@given(st.data(), st.booleans())
def test_value_counts_and_label_sizes_match(data_strategy, allow_missing):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    subset = _subsets_of(data_strategy.draw, data)
    single = PatternCounter(data)
    for k in SHARD_COUNTS:
        sharded = _sharded(data, k)
        for attribute in data.attribute_names:
            assert sharded.value_counts(attribute) == single.value_counts(
                attribute
            ), (k, attribute)
            np.testing.assert_array_equal(
                sharded.fractions(attribute), single.fractions(attribute)
            )
        assert sharded.label_size(subset) == single.label_size(subset), k
        full = single.distinct_full_rows()
        sharded_full = sharded.distinct_full_rows()
        assert np.array_equal(full[0], sharded_full[0]), k
        assert np.array_equal(full[1], sharded_full[1]), k


@SETTINGS
@given(st.data(), st.booleans())
def test_built_labels_match(data_strategy, allow_missing):
    """Label construction through a sharded counter is byte-identical."""
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    subset = _subsets_of(data_strategy.draw, data)
    reference = build_label(PatternCounter(data), subset)
    for k in SHARD_COUNTS:
        label = build_label(_sharded(data, k), subset)
        assert label == reference, k
        assert label.to_json() == reference.to_json(), k


@SETTINGS
@given(st.data())
def test_add_shard_equals_concat(data_strategy):
    """The incremental path: appending a shard == recounting the union."""
    data = data_strategy.draw(datasets())
    n_extra = data_strategy.draw(st.integers(0, 8))
    rows = [
        tuple(
            data_strategy.draw(
                st.sampled_from(list(data.schema[a].categories))
            )
            for a in data.attribute_names
        )
        for _ in range(n_extra)
    ]
    aligned = Dataset.from_rows(
        data.attribute_names,
        rows,
        domains={
            a: data.schema[a].categories for a in data.attribute_names
        },
    )
    sharded = ShardedPatternCounter.from_dataset(data, 2)
    sharded.add_shard(aligned)
    reference = PatternCounter(data.concat(aligned))
    patterns = data_strategy.draw(workloads(data))
    assert list(sharded.count_many(patterns)) == list(
        reference.count_many(patterns)
    )
    subset = _subsets_of(data_strategy.draw, data)
    assert sharded.label_size(subset) == reference.label_size(subset)
    for attribute in data.attribute_names:
        assert sharded.value_counts(attribute) == reference.value_counts(
            attribute
        )


@SETTINGS
@given(st.data(), st.booleans())
def test_mixed_range_counts_match_single_counter(data_strategy, allow_missing):
    """Mixed equality/range workloads: sharded == single == brute force."""
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    patterns = data_strategy.draw(mixed_workloads(data))
    brute = [_brute_count(data, p) for p in patterns]
    single = PatternCounter(data)
    assert list(single.count_many(patterns)) == brute
    for k in SHARD_COUNTS:
        sharded = _sharded(data, k)
        assert list(sharded.count_many(patterns)) == brute, k
        # Repeat batch: merged key tables and cumsums stay identical.
        assert list(sharded.count_many(patterns)) == brute, k


# -- parity across parallel execution modes -------------------------------------

PARALLEL_MODES = (
    "serial",
    pytest.param("pool", marks=pytest.mark.parallel),
    pytest.param("pack", marks=pytest.mark.parallel),
)


def _mode_counter(mode, data, k, tmp_path):
    """Build a K-shard counter in one of the three execution modes."""
    if mode == "serial":
        return ShardedPatternCounter.from_dataset(data, k)
    if mode == "pool":
        return ShardedPatternCounter.from_dataset(
            data, k, parallel=True, max_workers=2
        )
    from repro import write_pack

    pack_dir = write_pack(
        tmp_path / f"pack{k}", ShardedPatternCounter.from_dataset(data, k)
    )
    return ShardedPatternCounter.from_pack(
        pack_dir, parallel=True, max_workers=2
    )


@pytest.mark.parametrize("k", (1, 2, 4))
@pytest.mark.parametrize("mode", PARALLEL_MODES)
def test_parallel_mode_parity(tmp_path, mode, k):
    """Serial, shm-pool, and pack-backed workers agree byte for byte.

    The parallel fan-out must be invisible: identical ``count_many``
    vectors, identical joint tables, and labels whose JSON renderings
    match the single-counter reference exactly, for every shard count
    including the K=1 serial-routed case.
    """
    data = load_dataset("bluenile", n_rows=300, seed=7)
    single = PatternCounter(data)
    rng = np.random.default_rng(7)
    workload = random_pattern_workload(
        single, 25, rng, min_arity=1, max_arity=3
    )
    patterns = [workload.pattern(i) for i in range(len(workload))]
    expected_counts = list(single.count_many(patterns))
    subset = data.attribute_names[:2]
    reference = build_label(single, subset)

    with _mode_counter(mode, data, k, tmp_path) as counter:
        assert list(counter.count_many(patterns)) == expected_counts
        # Repeat batch: warmed (promoted) key tables answer identically.
        assert list(counter.count_many(patterns)) == expected_counts
        combos, counts = single.joint_table(subset)
        got_combos, got_counts = counter.joint_table(subset)
        assert np.array_equal(combos, got_combos)
        assert np.array_equal(counts, got_counts)
        label = build_label(counter, subset)
        assert label == reference
        assert label.to_json() == reference.to_json()
        if k == 1:
            assert counter._pool is None  # K=1 routes serial
        elif mode != "serial":
            assert counter._pool is not None and counter._pool.started


@pytest.mark.parametrize("k", (1, 2, 4))
@pytest.mark.parametrize("mode", PARALLEL_MODES)
def test_parallel_mode_parity_mixed_ranges(tmp_path, mode, k):
    """Range predicates cross the worker boundary byte for byte.

    A 50/50 equality/range workload must come back identical from the
    serial path, the shm-pool workers, and the pack-backed workers — the
    code-run task encoding is part of the worker protocol now.
    """
    data = load_dataset("bluenile", n_rows=300, seed=7)
    single = PatternCounter(data)
    rng = np.random.default_rng(11)
    workload = random_mixed_workload(
        single, 25, rng, min_arity=1, max_arity=3, range_share=0.5
    )
    patterns = [workload.pattern(i) for i in range(len(workload))]
    assert any(p.has_ranges for p in patterns)
    expected = [_brute_count(data, p) for p in patterns]
    assert list(single.count_many(patterns)) == expected

    with _mode_counter(mode, data, k, tmp_path) as counter:
        assert list(counter.count_many(patterns)) == expected
        # Repeat batch: warmed key tables and cumsums answer identically.
        assert list(counter.count_many(patterns)) == expected
        assert [counter.count(p) for p in patterns[:5]] == expected[:5]


def test_range_counts_survive_radix_overflow_pool(tmp_path):
    """The ``counts_for_runs`` pool task fires on radix overflow.

    A pattern binding eight attributes of cardinality 256 pushes the
    Horner radix to 2**64, so no merged key table exists for that set
    and its code runs must fan out to the per-shard workers as the
    ``counts_for_runs`` task.
    """
    rng = np.random.default_rng(13)
    names = [f"A{i}" for i in range(8)]
    domains = {n: tuple(f"{v:03d}" for v in range(256)) for n in names}
    columns = {
        n: [f"{v:03d}" for v in rng.integers(0, 4, size=64)]
        for n in names
    }
    data = Dataset.from_columns(columns, domains=domains)
    single = PatternCounter(data)
    wide_spec = {n: Predicate(">=", "001") for n in names}
    patterns = [
        Pattern(wide_spec),
        Pattern({**wide_spec, "A0": "002", "A1": Predicate("<", "003")}),
        Pattern({"A3": Predicate(">", "000"), "A4": Predicate("<=", "002")}),
    ]
    expected = [_brute_count(data, p) for p in patterns]
    assert [single.count(p) for p in patterns] == expected
    assert list(single.count_many(patterns)) == expected

    with ShardedPatternCounter.from_dataset(
        data, 2, parallel=True, max_workers=2
    ) as sharded:
        assert list(sharded.count_many(patterns)) == expected
        assert list(sharded.count_many(patterns)) == expected
        # The premise of this test: the 8-attribute radix genuinely
        # overflows, so the wide patterns had no merged key table and
        # took the per-shard pool path.
        overflow_sets = [
            attrs
            for attrs, table in sharded._merged_key_tables.items()
            if table is None
        ]
        assert overflow_sets, "expected a radix-overflow attribute set"
        assert sharded._pool is not None and sharded._pool.started


# -- parity on every shipped dataset generator ----------------------------------

GENERATORS = ("bluenile", "compas", "creditcard")


@pytest.mark.parametrize("name", GENERATORS)
@pytest.mark.parametrize("k", (2, 3))
def test_generator_parity(name, k):
    """Acceptance: sharded == single on every ``repro.datasets`` generator."""
    data = load_dataset(name, n_rows=600, seed=5)
    single = PatternCounter(data)
    sharded = ShardedPatternCounter.from_dataset(data, k)

    rng = np.random.default_rng(5)
    workload = random_pattern_workload(
        PatternCounter(data), 40, rng, min_arity=1, max_arity=3
    )
    patterns = [workload.pattern(i) for i in range(len(workload))]
    assert list(sharded.count_many(patterns)) == list(
        single.count_many(patterns)
    )

    subset = data.attribute_names[:2]
    assert sharded.label_size(subset) == single.label_size(subset)
    combos, counts = single.joint_table(subset)
    sharded_combos, sharded_counts = sharded.joint_table(subset)
    assert np.array_equal(combos, sharded_combos)
    assert np.array_equal(counts, sharded_counts)
    for attribute in data.attribute_names:
        assert sharded.value_counts(attribute) == single.value_counts(
            attribute
        )


@pytest.mark.parametrize("name", GENERATORS)
def test_generator_search_parity(name):
    """The full search pipeline lands on the same label either way."""
    data = load_dataset(name, n_rows=500, seed=2)
    reference = top_down_search(PatternCounter(data), 25)
    sharded = top_down_search(
        ShardedPatternCounter.from_dataset(data, 3), 25
    )
    assert sharded.attributes == reference.attributes
    assert sharded.label == reference.label
    assert sharded.summary.max_abs == pytest.approx(
        reference.summary.max_abs
    )
