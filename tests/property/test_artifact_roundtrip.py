"""Property tests: artifact round-trips are estimate-identical.

For every label kind — subset :class:`Label`, :class:`FlexibleLabel`,
and multi-label bundles — serializing through the repro-label/2 envelope
and parsing it back must leave every estimate over ``P_A`` exactly
unchanged, including the legacy bare-``Label`` JSON path.  Values are
drawn as strings (the CSV-born case the wire format stringifies to).
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, PatternCounter, build_label
from repro.api import (
    MultiLabelBundle,
    estimator_from_artifact,
    from_artifact,
    to_artifact,
)
from repro.core.flexlabel import greedy_flexible_label
from repro.core.patternsets import full_pattern_set

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def datasets(draw, min_rows: int = 2, max_rows: int = 18):
    """A random small categorical relation with string values."""
    n_attrs = draw(st.integers(2, 3))
    names = [f"A{i}" for i in range(n_attrs)]
    n_rows = draw(st.integers(min_rows, max_rows))
    columns = {}
    for name in names:
        size = draw(st.integers(2, 3))
        domain = [f"v{j}" for j in range(size)]
        columns[name] = draw(
            st.lists(
                st.sampled_from(domain), min_size=n_rows, max_size=n_rows
            )
        )
    return Dataset.from_columns(columns)


def _estimates(estimator, pattern_set) -> np.ndarray:
    return np.array(
        [
            estimator.estimate(pattern)
            for pattern, _ in pattern_set.iter_with_counts()
        ],
        dtype=np.float64,
    )


@given(data=datasets(), subset_size=st.integers(1, 2))
@SETTINGS
def test_label_round_trip_estimate_identical(data, subset_size):
    counter = PatternCounter(data)
    names = list(data.attribute_names)[:subset_size]
    label = build_label(counter, names)
    pattern_set = full_pattern_set(counter)

    # JSON all the way: envelope text → parsed artifact.
    reloaded = from_artifact(json.dumps(to_artifact(label)))
    before = _estimates(estimator_from_artifact(label), pattern_set)
    after = _estimates(estimator_from_artifact(reloaded), pattern_set)
    np.testing.assert_array_equal(before, after)


@given(data=datasets())
@SETTINGS
def test_legacy_bare_label_round_trip(data):
    counter = PatternCounter(data)
    label = build_label(counter, list(data.attribute_names)[:2])
    pattern_set = full_pattern_set(counter)

    reloaded = from_artifact(label.to_json())  # the v1 wire format
    before = _estimates(estimator_from_artifact(label), pattern_set)
    after = _estimates(estimator_from_artifact(reloaded), pattern_set)
    np.testing.assert_array_equal(before, after)
    assert reloaded == label


@given(data=datasets(max_rows=12), bound=st.integers(1, 4))
@SETTINGS
def test_flexible_round_trip_estimate_identical(data, bound):
    counter = PatternCounter(data)
    label = greedy_flexible_label(counter, bound)
    pattern_set = full_pattern_set(counter)

    reloaded = from_artifact(json.dumps(to_artifact(label)))
    before = _estimates(estimator_from_artifact(label), pattern_set)
    after = _estimates(estimator_from_artifact(reloaded), pattern_set)
    np.testing.assert_array_equal(before, after)
    assert reloaded.size == label.size
    assert reloaded.total == label.total


@given(
    data=datasets(),
    reduce=st.sampled_from(["median", "min", "max", "mean"]),
)
@SETTINGS
def test_multi_bundle_round_trip_estimate_identical(data, reduce):
    counter = PatternCounter(data)
    names = list(data.attribute_names)
    bundle = MultiLabelBundle(
        (
            build_label(counter, names[:1]),
            build_label(counter, names[:2]),
        ),
        reduce=reduce,
    )
    pattern_set = full_pattern_set(counter)

    reloaded = from_artifact(json.dumps(to_artifact(bundle)))
    assert isinstance(reloaded, MultiLabelBundle)
    assert reloaded.reduce == reduce
    before = _estimates(bundle.make_estimator(), pattern_set)
    after = _estimates(reloaded.make_estimator(), pattern_set)
    np.testing.assert_array_equal(before, after)
