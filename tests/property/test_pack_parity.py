"""Parity properties of pack-backed counters vs their in-memory twins.

A ``repro-pack/1`` round trip must be *observably identical*: for random
small relations (with and without missing values), in both the
single-counter and sharded shapes, a counter reopened from disk answers
``count_many``, ``joint_tables``, ``label_size_many``, and full label
builds byte-for-byte like the fitted counter it was dumped from.  Both
pack flavors are swept — warm (``include_caches=True``: radix tables,
key tables, and joint tables travel with the codes) and cold
(``include_caches=False``: everything recomputed from the mapped code
matrices) — because they exercise disjoint load paths.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    PatternCounter,
    ShardedPatternCounter,
    build_label,
)
from repro.persist.pack import open_pack, write_pack

from tests.property.test_batch_parity import datasets, workloads
from tests.property.test_shard_parity import _subsets_of

SHARD_COUNTS = (1, 3)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _counters_for(data: Dataset, k: int):
    """The in-memory reference counter and its shard layout."""
    if k == 1:
        return PatternCounter(data)
    return ShardedPatternCounter.from_dataset(data, k)


def _reopened(counter, directory: Path, *, include_caches: bool):
    """Round-trip ``counter`` through a pack; returns the lazy twin."""
    write_pack(directory, counter, include_caches=include_caches)
    return open_pack(directory).counter()


@SETTINGS
@given(st.data(), st.booleans(), st.booleans())
def test_count_many_matches(data_strategy, allow_missing, warm):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    patterns = data_strategy.draw(workloads(data))
    for k in SHARD_COUNTS:
        reference = _counters_for(data, k)
        expected = list(reference.count_many(patterns))
        with tempfile.TemporaryDirectory() as tmp:
            packed = _reopened(
                reference, Path(tmp) / "pack", include_caches=warm
            )
            assert list(packed.count_many(patterns)) == expected, k
            assert [packed.count(p) for p in patterns[:4]] == expected[:4], k


@SETTINGS
@given(st.data(), st.booleans())
def test_joint_tables_match(data_strategy, warm):
    data = data_strategy.draw(datasets())
    subsets = [
        _subsets_of(data_strategy.draw, data)
        for _ in range(data_strategy.draw(st.integers(1, 3)))
    ]
    for k in SHARD_COUNTS:
        reference = _counters_for(data, k)
        expected = reference.joint_tables(subsets)
        with tempfile.TemporaryDirectory() as tmp:
            packed = _reopened(
                reference, Path(tmp) / "pack", include_caches=warm
            )
            tables = packed.joint_tables(subsets)
            assert set(tables) == set(expected), k
            for key in expected:
                np.testing.assert_array_equal(
                    tables[key][0], expected[key][0], err_msg=str((k, key))
                )
                np.testing.assert_array_equal(
                    tables[key][1], expected[key][1], err_msg=str((k, key))
                )


@SETTINGS
@given(st.data(), st.booleans(), st.booleans())
def test_label_size_many_matches(data_strategy, allow_missing, warm):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    subsets = [
        _subsets_of(data_strategy.draw, data)
        for _ in range(data_strategy.draw(st.integers(1, 4)))
    ]
    for k in SHARD_COUNTS:
        reference = _counters_for(data, k)
        expected = list(reference.label_size_many(subsets))
        with tempfile.TemporaryDirectory() as tmp:
            packed = _reopened(
                reference, Path(tmp) / "pack", include_caches=warm
            )
            assert list(packed.label_size_many(subsets)) == expected, k


@SETTINGS
@given(st.data(), st.booleans())
def test_built_labels_match(data_strategy, allow_missing):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    subset = _subsets_of(data_strategy.draw, data)
    for k in SHARD_COUNTS:
        reference = _counters_for(data, k)
        expected = build_label(reference, subset).to_dict()
        with tempfile.TemporaryDirectory() as tmp:
            packed = _reopened(
                reference, Path(tmp) / "pack", include_caches=True
            )
            assert build_label(packed, subset).to_dict() == expected, k
