"""Cross-strategy parity of the unified search engine.

The frontier strategies share one driver (batched sizing, one batched
evaluator, canonical tie-breaking), so on any feasible instance the
exact strategies — ``naive``, ``top_down``, and exhaustive ``beam``
(unlimited width) — must return identical ``(attributes,
objective_value)`` pairs and *byte-identical* winning labels, and
``anytime`` with a generous budget must match them too.  Hypothesis
generates random small relations (n <= 6 attributes) and random bounds;
infeasible instances must be rejected consistently by every strategy.

The batched sizing kernel itself (``label_size_many``) is pinned
against the scalar ``label_size`` loop — its executable specification —
on the same generated relations, including missing-value relations
(which exercise the ``n_distinct`` fallback) and sharded counters.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    NoFeasibleLabelError,
    PatternCounter,
    ShardedPatternCounter,
    anytime_search,
    beam_search,
    naive_search,
    top_down_search,
)
from repro.datasets import load_dataset

from tests.property.test_batch_parity import datasets

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(st.data())
def test_exact_strategies_agree(data_strategy):
    data = data_strategy.draw(datasets())
    bound = data_strategy.draw(st.integers(2, 30))
    try:
        reference = naive_search(data, bound)
    except NoFeasibleLabelError:
        for strategy in (top_down_search, beam_search, anytime_search):
            with pytest.raises(NoFeasibleLabelError):
                strategy(data, bound)
        return
    beam = beam_search(data, bound)  # unlimited width = exhaustive
    anytime = anytime_search(data, bound)  # no budget = exhaustive
    # Unpruned top-down scores the same feasible pool as naive; with
    # parent pruning only the antichain survives, whose minimum can
    # never beat the full pool's (and equals it whenever Proposition
    # 3.2's empirical claim holds — adversarial random relations may
    # break that, which is exactly why the ablation flag exists).
    unpruned = top_down_search(data, bound, prune_parents=False)
    pruned = top_down_search(data, bound)

    for run in (beam, anytime, unpruned):
        assert run.attributes == reference.attributes
        assert run.objective_value == pytest.approx(
            reference.objective_value
        )
        assert run.label.to_json() == reference.label.to_json()
    assert pruned.objective_value >= reference.objective_value - 1e-9
    assert reference.is_exact and beam.is_exact and anytime.is_exact
    # Exhaustive beam and anytime score exactly the feasible subsets the
    # naive enumeration does (order aside).
    assert set(beam.candidates) == set(reference.candidates)
    assert set(anytime.candidates) == set(reference.candidates)


@SETTINGS
@given(st.data())
def test_anytime_budget_degrades_not_breaks(data_strategy):
    """Any candidate budget >= 1 yields a feasible label no worse than
    nothing, and the incumbent is one of the evaluated candidates."""
    data = data_strategy.draw(datasets())
    bound = data_strategy.draw(st.integers(3, 30))
    budget = data_strategy.draw(st.integers(1, 4))
    try:
        result = anytime_search(data, bound, max_candidates=budget)
    except NoFeasibleLabelError:
        return
    assert result.stats.labels_evaluated <= budget
    assert result.attributes in result.candidates
    counter = PatternCounter(data)
    assert counter.label_size(result.attributes) <= bound


@SETTINGS
@given(st.data(), st.booleans())
def test_label_size_many_matches_scalar(data_strategy, allow_missing):
    data = data_strategy.draw(datasets(allow_missing=allow_missing))
    names = list(data.attribute_names)
    subsets = [
        combo
        for size in range(1, len(names) + 1)
        for combo in itertools.combinations(names, size)
    ]
    counter = PatternCounter(data)
    expected = [PatternCounter(data).label_size(s) for s in subsets]
    assert list(counter.label_size_many(subsets)) == expected
    # Repeat batches answer from the shared per-set cache, identically.
    assert list(counter.label_size_many(subsets)) == expected
    for shards in (1, 2, 3):
        sharded = ShardedPatternCounter.from_dataset(data, shards)
        assert list(sharded.label_size_many(subsets)) == expected, shards


@pytest.mark.parametrize("name", ("bluenile", "compas", "creditcard"))
def test_generator_strategy_parity(name):
    """Acceptance: byte-identical winners on every shipped generator."""
    data = load_dataset(name, n_rows=400, seed=7)
    reference = naive_search(data, 25)
    for run in (
        top_down_search(data, 25),
        beam_search(data, 25),
        anytime_search(data, 25),
    ):
        assert run.attributes == reference.attributes
        assert run.label.to_json() == reference.label.to_json()
