"""Property-based tests (hypothesis) for the core invariants.

Random small categorical relations are generated and the paper's
structural claims are checked on every one of them: estimation exactness
inside ``S`` (Section III-A), exact marginalization, label-size
monotonicity (the naive cutoff's soundness), ``gen``'s no-duplicates
guarantee (Proposition 3.8), metric properties of the error functions,
and serialization round-trips.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    Label,
    LabelEstimator,
    Pattern,
    PatternCounter,
    build_label,
    evaluate_label,
    q_error,
)
from repro.core.errors import absolute_error, vectorized_estimates
from repro.core.lattice import LabelLattice
from repro.core.patternsets import full_pattern_set
from repro.core.search import NoFeasibleLabelError, naive_search, top_down_search
from repro.dataset.table import combine_codes

# -- strategies -----------------------------------------------------------------


@st.composite
def datasets(draw, min_rows: int = 1, max_rows: int = 24, allow_missing=False):
    """A random small categorical relation."""
    n_attrs = draw(st.integers(2, 4))
    names = [f"A{i}" for i in range(n_attrs)]
    domain_sizes = [draw(st.integers(2, 3)) for _ in range(n_attrs)]
    n_rows = draw(st.integers(min_rows, max_rows))
    columns = {}
    for name, size in zip(names, domain_sizes):
        domain = [f"v{j}" for j in range(size)]
        values = draw(
            st.lists(
                st.sampled_from(domain + ([None] if allow_missing else [])),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        columns[name] = values
    domains = {
        name: tuple(f"v{j}" for j in range(size))
        for name, size in zip(names, domain_sizes)
    }
    return Dataset.from_columns(columns, domains=domains)


@st.composite
def dataset_and_subset(draw):
    data = draw(datasets())
    names = list(data.attribute_names)
    k = draw(st.integers(1, len(names)))
    subset = draw(
        st.lists(st.sampled_from(names), min_size=k, max_size=k, unique=True)
    )
    return data, tuple(subset)


SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- combine_codes --------------------------------------------------------------


@SETTINGS
@given(
    st.integers(1, 50),
    st.integers(1, 6),
    st.integers(2, 5),
    st.integers(0, 2**31 - 1),
)
def test_combine_codes_groups_like_row_equality(n_rows, n_cols, card, seed):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, card, size=(n_rows, n_cols)).astype(np.int32)
    keys = combine_codes(codes, [card] * n_cols)
    for i in range(min(n_rows, 12)):
        for j in range(i + 1, min(n_rows, 12)):
            rows_equal = bool((codes[i] == codes[j]).all())
            assert (keys[i] == keys[j]) == rows_equal


# -- estimation -----------------------------------------------------------------


@SETTINGS
@given(dataset_and_subset())
def test_estimation_exact_within_s(data_subset):
    """Section III-A: Attr(p) ⊆ S implies Est(p, l) = c_D(p)."""
    data, subset = data_subset
    counter = PatternCounter(data)
    estimator = LabelEstimator(build_label(counter, subset))
    domains = {a: data.schema[a].categories for a in subset}
    for combo in itertools.islice(
        itertools.product(*(domains[a] for a in subset)), 20
    ):
        pattern = Pattern(dict(zip(subset, combo)))
        assert estimator.estimate(pattern) == counter.count(pattern)


@SETTINGS
@given(dataset_and_subset())
def test_restricted_count_marginalizes_exactly(data_subset):
    data, subset = data_subset
    counter = PatternCounter(data)
    label = build_label(counter, subset)
    attribute = subset[0]
    for value in data.schema[attribute].categories:
        pattern = Pattern({attribute: value})
        assert label.restricted_count(pattern) == counter.count(pattern)


@SETTINGS
@given(dataset_and_subset())
def test_vectorized_estimates_match_estimator(data_subset):
    data, subset = data_subset
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    if len(pattern_set) == 0:
        return
    vectorized = vectorized_estimates(counter, subset, pattern_set)
    estimator = LabelEstimator(build_label(counter, subset))
    for index in range(len(pattern_set)):
        single = estimator.estimate(pattern_set.pattern(index))
        assert abs(vectorized[index] - single) <= 1e-9 * max(1.0, single)


@SETTINGS
@given(datasets())
def test_full_attribute_label_has_zero_error(data):
    counter = PatternCounter(data)
    summary = evaluate_label(counter, data.attribute_names)
    assert summary.max_abs == 0.0
    assert summary.max_q == 1.0


@SETTINGS
@given(datasets())
def test_estimates_are_non_negative_and_bounded(data):
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    for subset_size in (0, 1):
        for subset in itertools.combinations(
            data.attribute_names, subset_size
        ):
            estimates = vectorized_estimates(counter, subset, pattern_set)
            assert (estimates >= 0).all()
            assert (estimates <= data.n_rows + 1e-9).all()


# -- label size -----------------------------------------------------------------


@SETTINGS
@given(datasets())
def test_label_size_monotone_under_attribute_addition(data):
    """Soundness of the naive cutoff: |P_S| never shrinks as S grows."""
    counter = PatternCounter(data)
    names = data.attribute_names
    for subset_size in range(1, len(names)):
        for subset in itertools.combinations(names, subset_size):
            for extra in names:
                if extra in subset:
                    continue
                bigger = tuple(sorted(subset + (extra,)))
                assert counter.label_size(bigger) >= counter.label_size(
                    subset
                )


@SETTINGS
@given(datasets(allow_missing=True))
def test_label_size_monotone_with_missing_values(data):
    counter = PatternCounter(data)
    names = data.attribute_names
    for subset in itertools.combinations(names, 2):
        full = tuple(names)
        assert counter.label_size(full) >= counter.label_size(subset) or (
            counter.label_size(subset) == 0
        )


@SETTINGS
@given(datasets())
def test_label_size_bounded_by_domain_product_and_rows(data):
    counter = PatternCounter(data)
    names = data.attribute_names
    for subset in itertools.combinations(names, 2):
        size = counter.label_size(subset)
        product = 1
        for attribute in subset:
            product *= data.schema[attribute].cardinality
        assert size <= min(product, data.n_rows)


# -- error metrics ---------------------------------------------------------------


@SETTINGS
@given(
    st.integers(0, 10_000),
    st.floats(0, 10_000, allow_nan=False),
)
def test_metric_properties(true_count, estimate):
    assert absolute_error(true_count, estimate) >= 0.0
    assert q_error(true_count, estimate) >= 1.0


@SETTINGS
@given(st.integers(1, 10_000))
def test_exact_estimate_metrics(count):
    assert absolute_error(count, count) == 0.0
    assert q_error(count, count) == 1.0


# -- lattice ----------------------------------------------------------------------


@SETTINGS
@given(st.integers(1, 6))
def test_gen_traversal_covers_each_nonempty_subset_once(n):
    order = tuple(f"A{i}" for i in range(n))
    lattice = LabelLattice(order)
    visited = list(lattice.iter_top_down())
    assert len(visited) == len(set(visited)) == 2**n - 1


@SETTINGS
@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
def test_gen_children_partition_against_parents(n, seed):
    """Every subset of size >= 2 is generated by exactly one parent."""
    order = tuple(f"A{i}" for i in range(n))
    lattice = LabelLattice(order)
    generated_by: dict[tuple[str, ...], int] = {}
    for node in lattice.iter_top_down():
        for child in lattice.gen(node):
            generated_by[child] = generated_by.get(child, 0) + 1
    assert all(count == 1 for count in generated_by.values())


# -- search -----------------------------------------------------------------------


@SETTINGS
@given(datasets(min_rows=4), st.integers(2, 12))
def test_topdown_candidates_subset_of_naive_feasible(data, bound):
    counter = PatternCounter(data)
    pattern_set = full_pattern_set(counter)
    try:
        naive = naive_search(counter, bound, pattern_set=pattern_set)
    except NoFeasibleLabelError:
        try:
            top_down_search(counter, bound, pattern_set=pattern_set)
            raise AssertionError("top-down found a label where naive did not")
        except NoFeasibleLabelError:
            return
    top = top_down_search(counter, bound, pattern_set=pattern_set)
    assert set(top.candidates) <= set(naive.candidates)
    # The exhaustive optimum can only be at least as good.
    assert naive.objective_value <= top.objective_value + 1e-9


@SETTINGS
@given(datasets(min_rows=4), st.integers(2, 12))
def test_search_result_fits_bound(data, bound):
    counter = PatternCounter(data)
    try:
        result = top_down_search(counter, bound)
    except NoFeasibleLabelError:
        return
    assert result.label.size <= bound
    assert result.summary.max_abs == result.objective_value


# -- serialization ----------------------------------------------------------------


@SETTINGS
@given(dataset_and_subset())
def test_label_json_roundtrip(data_subset):
    data, subset = data_subset
    label = build_label(data, subset)
    restored = Label.from_json(label.to_json())
    assert restored.attributes == label.attributes
    assert restored.pc == label.pc
    assert restored.vc == label.vc
    assert restored.total == label.total


@SETTINGS
@given(dataset_and_subset())
def test_roundtripped_label_estimates_identically(data_subset):
    data, subset = data_subset
    counter = PatternCounter(data)
    label = build_label(counter, subset)
    restored = Label.from_json(label.to_json())
    original = LabelEstimator(label)
    recovered = LabelEstimator(restored)
    names = data.attribute_names
    pattern = Pattern(
        {names[0]: data.schema[names[0]].categories[0]}
    )
    assert original.estimate(pattern) == recovered.estimate(pattern)


# -- dataset operations ------------------------------------------------------------


@SETTINGS
@given(datasets())
def test_concat_counts_additive(data):
    doubled = data.concat(data)
    for attribute in data.attribute_names:
        base = data.value_counts(attribute)
        combined = doubled.value_counts(attribute)
        for value, count in base.items():
            assert combined[value] == 2 * count


@SETTINGS
@given(datasets())
def test_joint_counts_marginalize_to_value_counts(data):
    names = data.attribute_names
    combos, counts = data.joint_counts(list(names[:2]))
    first = names[0]
    marginal: dict[int, int] = {}
    for combo, count in zip(combos, counts):
        marginal[int(combo[0])] = marginal.get(int(combo[0]), 0) + int(count)
    expected = data.value_counts(first)
    for code, total in marginal.items():
        value = data.schema[first].category_of(code)
        assert expected[value] >= total  # missing rows in other column
