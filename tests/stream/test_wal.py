"""Write-ahead-log unit tests: framing, durability, crash recovery.

The crash suite simulates a kill mid-write byte-exactly: a log is
truncated at every byte offset inside its final frame and replayed —
the torn tail must be detected by the length/checksum framing and
dropped, while every earlier record replays byte-identically.
"""

from __future__ import annotations

import zlib

import pytest

from repro.dataset.table import Dataset
from repro.stream.wal import (
    WAL_MAGIC,
    WalError,
    WalRecord,
    WriteAheadLog,
)

pytestmark = pytest.mark.stream


def _batch(rows):
    return Dataset.from_rows(["a", "b"], rows)


def _append_n(wal: WriteAheadLog, n: int) -> list[WalRecord]:
    return [
        wal.append(
            label="lab",
            attributes=("a", "b"),
            inserted=_batch([[i, i % 3], [i + 1, (i + 1) % 3]]),
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_append_then_replay_returns_identical_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        written = _append_n(wal, 5)
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.records == tuple(written)
        assert not replay.dropped_tail
        assert replay.last_seq == 5

    def test_payloads_are_byte_identical_across_processes(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        written = _append_n(wal, 3)
        replayed = WriteAheadLog(tmp_path).replay().records
        for a, b in zip(written, replayed):
            assert a.to_payload() == b.to_payload()

    def test_datasets_rebuild_from_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        batch = _batch([[1, 2], [0, 1]])
        wal.append(label="lab", attributes=("a", "b"), inserted=batch)
        (record,) = WriteAheadLog(tmp_path).replay().records
        rebuilt = record.inserted_dataset()
        assert list(rebuilt.iter_rows()) == list(batch.iter_rows())
        assert record.deleted_dataset() is None

    def test_sequence_numbers_continue_across_reopen(self, tmp_path):
        _append_n(WriteAheadLog(tmp_path), 2)
        record = WriteAheadLog(tmp_path).append(
            label="lab", attributes=("a", "b"), inserted=_batch([[0, 0]])
        )
        assert record.seq == 3

    def test_empty_log_replays_empty(self, tmp_path):
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.records == ()
        assert replay.last_seq == 0
        assert not replay.dropped_tail

    def test_records_filters_by_label(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(label="x", attributes=("a", "b"), inserted=_batch([[0, 0]]))
        wal.append(label="y", attributes=("a", "b"), inserted=_batch([[1, 1]]))
        assert [r.label for r in wal.records()] == ["x", "y"]
        assert [r.seq for r in wal.records("y")] == [2]


class TestValidation:
    def test_append_without_batch_raises(self, tmp_path):
        with pytest.raises(WalError, match="at least one"):
            WriteAheadLog(tmp_path).append(label="lab", attributes=("a",))

    def test_non_json_value_raises_before_writing(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        batch = Dataset.from_rows(["a"], [[object()]])
        with pytest.raises(WalError, match="JSON"):
            wal.append(label="lab", attributes=("a",), inserted=batch)
        assert not wal.path.exists()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "stream.wal"
        path.write_bytes(b"not a wal file at all" * 2)
        with pytest.raises(WalError, match="magic"):
            WriteAheadLog(tmp_path).replay()


class TestCrashRecovery:
    """Kill-mid-write simulation: truncate at every tail byte offset."""

    def test_torn_tail_dropped_earlier_records_byte_identical(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        written = _append_n(wal, 4)
        whole = wal.path.read_bytes()
        replay_all = WriteAheadLog(tmp_path).replay()
        assert replay_all.last_seq == 4
        last_frame_len = 8 + len(written[-1].to_payload())
        frame_start = len(whole) - last_frame_len
        for cut in range(frame_start + 1, len(whole)):
            crash_dir = tmp_path / f"cut-{cut}"
            crash_dir.mkdir()
            (crash_dir / "stream.wal").write_bytes(whole[:cut])
            replay = WriteAheadLog(crash_dir).replay()
            assert replay.dropped_tail, f"cut at {cut} not detected"
            assert replay.records == replay_all.records[:3]
            for a, b in zip(replay.records, written[:3]):
                assert a.to_payload() == b.to_payload()

    def test_replay_repairs_file_so_appends_extend_cleanly(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _append_n(wal, 3)
        data = wal.path.read_bytes()
        wal.path.write_bytes(data[:-5])  # torn tail
        recovered = WriteAheadLog(tmp_path)
        replay = recovered.replay()
        assert replay.dropped_tail and replay.last_seq == 2
        recovered.append(
            label="lab", attributes=("a", "b"), inserted=_batch([[9, 0]])
        )
        final = WriteAheadLog(tmp_path).replay()
        assert not final.dropped_tail
        assert [r.seq for r in final.records] == [1, 2, 3]

    def test_checksum_mismatch_mid_file_drops_rest(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        written = _append_n(wal, 3)
        data = bytearray(wal.path.read_bytes())
        # Corrupt one payload byte of the second frame.
        first_frame_len = 8 + len(written[0].to_payload())
        target = len(WAL_MAGIC) + first_frame_len + 8 + 2
        data[target] ^= 0xFF
        wal.path.write_bytes(bytes(data))
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.dropped_tail
        assert replay.reason == "checksum mismatch"
        assert [r.seq for r in replay.records] == [1]

    def test_unparseable_but_checksummed_payload_drops_rest(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _append_n(wal, 1)
        payload = b"not json"
        import struct

        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(wal.path, "ab") as handle:
            handle.write(frame)
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.dropped_tail
        assert replay.reason == "unparseable payload"
        assert replay.last_seq == 1


class TestTruncate:
    def test_truncate_through_seq_keeps_suffix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _append_n(wal, 5)
        assert wal.truncate(through_seq=3) == 3
        replay = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in replay.records] == [4, 5]
        assert not replay.dropped_tail

    def test_truncate_all_then_append_restarts_numbering(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _append_n(wal, 2)
        assert wal.truncate() == 2
        # Within the same handle the sequence keeps climbing...
        record = wal.append(
            label="lab", attributes=("a", "b"), inserted=_batch([[0, 0]])
        )
        assert record.seq == 3
        # ...while a reopened empty log would have restarted at 1.

    def test_truncate_nothing_is_a_cheap_no_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _append_n(wal, 2)
        before = wal.path.read_bytes()
        assert wal.truncate(through_seq=0) == 0
        assert wal.path.read_bytes() == before
