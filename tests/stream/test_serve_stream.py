"""Streamed serving: WAL-logged HTTP updates, recovery, CLI flags."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import LabelingSession, Pattern, StreamConfig
from repro.cli import main
from repro.stream import StreamIngestor, WriteAheadLog

pytestmark = pytest.mark.stream

ROW = {
    "gender": "Female",
    "age group": "under 20",
    "race": "Hispanic",
    "marital status": "single",
}


@pytest.fixture
def session(figure2) -> LabelingSession:
    return LabelingSession.fit(figure2, 6)


@pytest.fixture
def streamed(session, tmp_path):
    with session.serve(name="compas") as service:
        ingestor = session.stream(
            tmp_path / "wal",
            name="compas",
            store=service.store,
            config=StreamConfig(drift_threshold=None),
        )
        service.attach_stream(ingestor)
        yield service, ingestor


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def _post(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


class TestStreamedUpdates:
    def test_update_is_wal_logged_and_published(
        self, streamed, session, tmp_path
    ):
        service, ingestor = streamed
        status, payload = _post(
            service.url + "/labels/compas/update", {"inserted": [ROW]}
        )
        assert status == 200
        assert payload["streamed"] is True
        assert payload["seq"] == 1
        # serve published v1, attaching the ingestor v2, the batch v3
        assert payload["version"] == 3
        assert payload["total"] == 19
        replayed = WriteAheadLog(tmp_path / "wal").records("compas")
        assert [r.seq for r in replayed] == [1]

    def test_estimates_reflect_the_streamed_batch(self, streamed, session):
        service, _ = streamed
        before = session.estimate(Pattern({"gender": "Female"}))
        _post(service.url + "/labels/compas/update", {"inserted": [ROW]})
        _, answer = _post(
            service.url + "/labels/compas/estimate",
            {"pattern": {"gender": "Female"}},
        )
        assert answer["estimates"] == [before + 1.0]

    def test_bad_batch_is_400_and_not_logged(self, streamed, tmp_path):
        service, _ = streamed
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(
                service.url + "/labels/compas/update",
                {"inserted": [{"gender": "Female"}]},
            )
        assert info.value.code == 400
        assert WriteAheadLog(tmp_path / "wal").records() == []

    def test_crash_recovery_matches_served_state(
        self, streamed, session, tmp_path
    ):
        service, ingestor = streamed
        for _ in range(3):
            _post(
                service.url + "/labels/compas/update", {"inserted": [ROW]}
            )
        served = service.store.get("compas").artifact

        # A fresh process: same WAL, pre-stream label, replay=True.
        recovered = StreamIngestor(
            session.artifact,
            wal=WriteAheadLog(tmp_path / "wal"),
            name="compas",
            config=StreamConfig(drift_threshold=None),
            replay=True,
        )
        assert recovered.label.to_json() == served.to_json()
        assert recovered.last_seq == ingestor.last_seq

    def test_attach_rejects_foreign_store(self, session, tmp_path):
        with session.serve(name="compas") as service:
            foreign = session.stream(
                tmp_path / "wal",
                name="compas",
                config=StreamConfig(drift_threshold=None),
            )
            with pytest.raises(ValueError, match="different store"):
                service.attach_stream(foreign)

    def test_unattached_labels_keep_the_synchronous_path(
        self, streamed, session
    ):
        service, _ = streamed
        service.store.publish("plain", session.artifact)
        status, payload = _post(
            service.url + "/labels/plain/update", {"inserted": [ROW]}
        )
        assert status == 200
        assert "streamed" not in payload


class TestServeCliFlags:
    def test_stream_requires_wal_dir(self, tmp_path, figure2_label_path):
        with pytest.raises(SystemExit, match="--wal-dir"):
            main(["serve", str(figure2_label_path), "--stream"])

    def test_wal_dir_requires_stream(self, tmp_path, figure2_label_path):
        with pytest.raises(SystemExit, match="--stream"):
            main(
                [
                    "serve",
                    str(figure2_label_path),
                    "--wal-dir",
                    str(tmp_path / "wal"),
                ]
            )


@pytest.fixture
def figure2_label_path(figure2, tmp_path):
    path = tmp_path / "compas.json"
    LabelingSession.fit(figure2, 6).save(path)
    return path
