"""Publisher: versioned snapshot swaps and latency accounting."""

from __future__ import annotations

import pytest

from repro.core.label import build_label
from repro.serve.store import LabelStore
from repro.stream import LabelPublisher

pytestmark = pytest.mark.stream


@pytest.fixture
def label(figure2):
    return build_label(figure2, ["gender", "race"])


class TestPublish:
    def test_versions_count_up_from_zero(self, label):
        publisher = LabelPublisher(name="lab")
        assert publisher.version == 0
        assert publisher.publish(label).version == 1
        assert publisher.publish(label).version == 2
        assert publisher.version == 2

    def test_shared_store_sees_every_publish(self, label):
        store = LabelStore()
        publisher = LabelPublisher(store, "lab")
        publisher.publish(label)
        assert store.get("lab").artifact is label

    def test_snapshot_returns_current(self, label):
        publisher = LabelPublisher(name="lab")
        publisher.publish(label)
        assert publisher.snapshot().artifact is label


class TestLatencies:
    def test_every_publish_is_timed(self, label):
        publisher = LabelPublisher(name="lab")
        for _ in range(5):
            publisher.publish(label)
        assert len(publisher.latencies) == 5
        assert all(t >= 0.0 for t in publisher.latencies)

    def test_history_window_caps_retention(self, label):
        publisher = LabelPublisher(name="lab", history=3)
        for _ in range(5):
            publisher.publish(label)
        assert len(publisher.latencies) == 3

    def test_quantiles_nearest_rank(self, label):
        publisher = LabelPublisher(name="lab")
        publisher._latencies.extend([0.4, 0.1, 0.3, 0.2])
        assert publisher.latency_quantile(0.0) == 0.1
        assert publisher.latency_quantile(0.5) == 0.2
        assert publisher.latency_quantile(1.0) == 0.4

    def test_quantile_validation_and_empty(self):
        publisher = LabelPublisher(name="lab")
        assert publisher.latency_quantile(0.99) == 0.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            publisher.latency_quantile(1.5)
