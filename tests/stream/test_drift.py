"""Drift monitor: sampled recounts, staleness, background re-search."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import StreamConfig
from repro.core.counts import PatternCounter
from repro.core.label import build_label
from repro.dataset.table import Dataset
from repro.stream import DriftMonitor, StreamError, StreamIngestor, WriteAheadLog

pytestmark = pytest.mark.stream

ATTRS = ["a", "b", "c"]


def _independent(rng, n=300) -> Dataset:
    return Dataset.from_columns(
        {
            "a": [int(v) for v in rng.integers(0, 4, n)],
            "b": [int(v) for v in rng.integers(0, 3, n)],
            "c": [int(v) for v in rng.integers(0, 2, n)],
        }
    )


def _correlated(n=100) -> Dataset:
    # c is a function of a: an ("a", "b") label's independence fallback
    # for patterns touching c goes badly wrong once these dominate.
    return Dataset.from_rows(
        ATTRS, [[i % 4, i % 3, (i % 4) % 2] for i in range(n)]
    )


class TestCheck:
    def test_first_check_sets_baseline_and_never_flags(self, rng):
        counter = PatternCounter(_independent(rng))
        label = build_label(counter, ("a", "b"))
        monitor = DriftMonitor(counter, threshold=1.0, sample=64)
        status = monitor.check(label)
        assert not status.stale
        assert monitor.baseline == max(status.error, 1.0)

    def test_mismatched_label_flags_stale(self, rng):
        stale_label = build_label(PatternCounter(_independent(rng, 100)), ("a",))
        live = PatternCounter(_correlated(1000))
        monitor = DriftMonitor(live, threshold=1.0, sample=64)
        monitor.rebase(1.0)
        status = monitor.check(stale_label)
        assert status.stale
        assert status.error > status.threshold * status.baseline

    def test_checks_draw_fresh_workloads(self, rng):
        counter = PatternCounter(_independent(rng))
        label = build_label(counter, ("a", "b"))
        monitor = DriftMonitor(counter, sample=64)
        errors = {monitor.check(label).error for _ in range(4)}
        # A frozen workload would produce one error forever.
        assert len(errors) > 1

    def test_validation(self):
        counter = PatternCounter(_correlated(10))
        with pytest.raises(StreamError, match="threshold"):
            DriftMonitor(counter, threshold=0.5)
        with pytest.raises(StreamError, match="sample"):
            DriftMonitor(counter, sample=0)


class TestResearch:
    def _stale_status(self, monitor, rng):
        stale_label = build_label(
            PatternCounter(_independent(rng, 100)), ("a",)
        )
        monitor.rebase(1.0)
        return monitor.check(stale_label)

    def test_not_stale_is_a_no_op(self, rng):
        counter = PatternCounter(_independent(rng))
        monitor = DriftMonitor(counter, sample=64)
        status = monitor.check(build_label(counter, ("a", "b")))
        assert not monitor.maybe_research(status)
        assert monitor.join()

    def test_stale_check_triggers_budgeted_research(self, rng):
        live = PatternCounter(_correlated(1000))
        swapped = []
        monitor = DriftMonitor(
            live,
            threshold=1.0,
            sample=64,
            budget_seconds=2.0,
            bound=8,
            swap=lambda result: swapped.append(result) or None,
        )
        assert monitor.maybe_research(self._stale_status(monitor, rng))
        assert monitor.join(timeout=30)
        assert monitor.last_error is None
        assert monitor.researches == 1
        assert monitor.last_result is not None
        assert monitor.last_result.label.size <= 8
        assert swapped == [monitor.last_result]
        # The winner's error is the new baseline.
        assert monitor.baseline == max(
            monitor.last_result.summary.max_abs, 1.0
        )

    def test_at_most_one_research_in_flight(self, rng):
        release = threading.Event()
        monitor = DriftMonitor(
            PatternCounter(_correlated(1000)),
            threshold=1.0,
            sample=64,
            bound=8,
            swap=lambda result: (release.wait(30), None)[1],
        )
        status = self._stale_status(monitor, rng)
        assert monitor.maybe_research(status)
        try:
            assert monitor.researching
            assert not monitor.maybe_research(status)
        finally:
            release.set()
        assert monitor.join(timeout=30)
        assert monitor.researches == 1

    def test_missing_bound_surfaces_on_last_error(self, rng):
        monitor = DriftMonitor(
            PatternCounter(_correlated(1000)), threshold=1.0, sample=64
        )
        assert monitor.maybe_research(self._stale_status(monitor, rng))
        assert monitor.join(timeout=30)
        assert isinstance(monitor.last_error, StreamError)
        assert monitor.researches == 0


class TestIngestorDrift:
    def test_drifted_stream_researches_and_rebases(self, tmp_path, rng):
        counter = PatternCounter(_independent(rng))
        ingestor = StreamIngestor(
            build_label(counter, ("a", "b")),
            wal=WriteAheadLog(tmp_path / "wal"),
            counter=counter,
            config=StreamConfig(
                drift_check_every=1,
                drift_threshold=1.0,
                drift_sample=64,
                research_budget_seconds=1.0,
            ),
        )
        monitor = ingestor.drift_monitor
        assert monitor is not None
        statuses = [
            ingestor.submit(inserted=_correlated(200)).drift
            for _ in range(10)
        ]
        assert ingestor.join(timeout=60)
        assert monitor.last_error is None
        assert any(s is not None and s.stale for s in statuses)
        assert monitor.researches >= 1
        # Re-search published through the same path the batches use.
        assert ingestor.publisher.version > len(statuses)
