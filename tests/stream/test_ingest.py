"""StreamIngestor: maintain-log-count-publish, compaction, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import StreamConfig
from repro.api.errors import RegistryError
from repro.core.counts import PatternCounter
from repro.core.label import build_label
from repro.core.maintenance import apply_deletes, apply_inserts
from repro.core.pattern import Pattern
from repro.dataset.table import Dataset
from repro.stream import StreamError, StreamIngestor, WriteAheadLog

pytestmark = pytest.mark.stream

ATTRS = ["a", "b", "c"]


@pytest.fixture
def data(rng) -> Dataset:
    return Dataset.from_columns(
        {
            "a": [int(v) for v in rng.integers(0, 4, 300)],
            "b": [int(v) for v in rng.integers(0, 3, 300)],
            "c": [int(v) for v in rng.integers(0, 2, 300)],
        }
    )


def _ingestor(data, tmp_path, **config_kwargs):
    counter = PatternCounter(data)
    label = build_label(counter, ("a", "b"))
    config = StreamConfig(drift_threshold=None, **config_kwargs)
    return StreamIngestor(
        label,
        wal=WriteAheadLog(tmp_path / "wal"),
        counter=counter,
        config=config,
    )


def _random_batch(rng, n=20) -> Dataset:
    return Dataset.from_rows(
        ATTRS,
        [
            [int(rng.integers(0, 4)), int(rng.integers(0, 3)),
             int(rng.integers(0, 2))]
            for _ in range(n)
        ],
    )


class TestWritePath:
    def test_labels_match_synchronous_maintenance_byte_identically(
        self, data, tmp_path, rng
    ):
        ingestor = _ingestor(data, tmp_path)
        reference = ingestor.label
        for _ in range(6):
            batch = _random_batch(rng)
            ingestor.submit(inserted=batch)
            reference = apply_inserts(reference, batch)
        assert ingestor.label.to_json() == reference.to_json()

    def test_every_batch_publishes_a_new_version(self, data, tmp_path, rng):
        ingestor = _ingestor(data, tmp_path)
        versions = [
            ingestor.submit(inserted=_random_batch(rng)).version
            for _ in range(4)
        ]
        assert versions == sorted(versions)
        assert len(set(versions)) == 4
        assert ingestor.publisher.version == versions[-1]

    def test_batch_is_wal_logged_before_visible(self, data, tmp_path, rng):
        ingestor = _ingestor(data, tmp_path)
        batch = _random_batch(rng)
        status = ingestor.submit(inserted=batch)
        replayed = WriteAheadLog(tmp_path / "wal").records("label")
        assert [r.seq for r in replayed] == [status.seq]

    def test_invalid_batch_logs_and_changes_nothing(self, data, tmp_path):
        ingestor = _ingestor(data, tmp_path)
        bad = Dataset.from_rows(["a", "wrong"], [[0, 0]])
        with pytest.raises(StreamError, match="rejected"):
            ingestor.submit(inserted=bad)
        assert WriteAheadLog(tmp_path / "wal").records() == []
        assert ingestor.last_seq == 0

    def test_submit_without_batches_raises(self, data, tmp_path):
        with pytest.raises(StreamError, match="at least one"):
            _ingestor(data, tmp_path).submit()

    def test_deletes_maintain_label_but_detach_counter(
        self, data, tmp_path, rng
    ):
        ingestor = _ingestor(data, tmp_path)
        reference = ingestor.label
        batch = _random_batch(rng)
        ingestor.submit(inserted=batch)
        reference = apply_inserts(reference, batch)
        first = next(iter(batch.iter_rows()))
        victim = Dataset.from_rows(ATTRS, [[first[a] for a in ATTRS]])
        status = ingestor.submit(deleted=victim)
        reference = apply_deletes(reference, victim)
        assert ingestor.label.to_json() == reference.to_json()
        assert ingestor.counter is None
        assert "delete" in status.detached

    def test_out_of_domain_insert_detaches_counter_but_maintains(
        self, data, tmp_path
    ):
        ingestor = _ingestor(data, tmp_path)
        reference = ingestor.label
        novel = Dataset.from_rows(ATTRS, [[99, 0, 0]])
        status = ingestor.submit(inserted=novel)
        reference = apply_inserts(reference, novel)
        assert ingestor.label.to_json() == reference.to_json()
        assert ingestor.counter is None
        assert "domain" in status.detached
        # The stream keeps flowing label-only.
        follow = ingestor.submit(inserted=Dataset.from_rows(ATTRS, [[0, 0, 0]]))
        assert follow.seq == 2


class TestCompaction:
    def test_policy_folds_tail_shards(self, data, tmp_path, rng):
        ingestor = _ingestor(data, tmp_path, compact_every=3)
        for _ in range(7):
            ingestor.submit(inserted=_random_batch(rng))
        assert ingestor.join(timeout=30)
        assert ingestor.compact_error is None
        assert ingestor.compactions >= 1
        assert ingestor.counter.n_shards < 8  # 1 base + 7 batches uncompacted

    def test_counts_stay_exact_after_compaction(self, data, tmp_path, rng):
        ingestor = _ingestor(data, tmp_path, compact_every=2)
        rows = [list(r.values()) for r in data.iter_rows()]
        for _ in range(5):
            batch = _random_batch(rng)
            rows += [list(r.values()) for r in batch.iter_rows()]
            ingestor.submit(inserted=batch)
        assert ingestor.join(timeout=30)
        assert ingestor.compact_error is None
        fresh = PatternCounter(Dataset.from_rows(ATTRS, rows))
        for a in range(4):
            for b in range(3):
                pattern = Pattern({"a": a, "b": b})
                assert ingestor.counter.count(pattern) == fresh.count(pattern)

    def test_min_rows_gate_defers_compaction(self, data, tmp_path, rng):
        ingestor = _ingestor(
            data, tmp_path, compact_every=2, compact_min_rows=10_000
        )
        for _ in range(4):
            ingestor.submit(inserted=_random_batch(rng))
        assert ingestor.join(timeout=30)
        assert ingestor.compactions == 0
        assert ingestor.counter.n_shards == 5

    def test_pack_checkpoint_truncates_wal(self, data, tmp_path, rng):
        pack_dir = tmp_path / "pack"
        ingestor = _ingestor(
            data, tmp_path, compact_every=2, pack_dir=str(pack_dir)
        )
        for _ in range(3):
            ingestor.submit(inserted=_random_batch(rng))
        assert ingestor.join(timeout=30)
        assert ingestor.compact_error is None
        assert ingestor.compactions >= 1
        assert pack_dir.exists()
        # Checkpointed batches no longer replay; later ones still do.
        remaining = WriteAheadLog(tmp_path / "wal").records()
        assert all(r.seq > 2 for r in remaining)
        from repro.persist import open_pack

        reader = open_pack(pack_dir)
        packed = reader.load_label("label")
        recovered = packed
        for record in remaining:
            recovered = apply_inserts(recovered, record.inserted_dataset())
        assert recovered.to_json() == ingestor.label.to_json()


class TestRecovery:
    def test_replay_reconstructs_state_byte_identically(
        self, data, tmp_path, rng
    ):
        ingestor = _ingestor(data, tmp_path)
        for _ in range(5):
            ingestor.submit(inserted=_random_batch(rng))
        crashed_label = ingestor.label

        recovered = StreamIngestor(
            build_label(PatternCounter(data), ("a", "b")),
            wal=WriteAheadLog(tmp_path / "wal"),
            counter=PatternCounter(data),
            config=StreamConfig(drift_threshold=None),
            replay=True,
        )
        assert recovered.label.to_json() == crashed_label.to_json()
        assert recovered.last_seq == ingestor.last_seq
        assert recovered.counter.total_rows == ingestor.counter.total_rows

    def test_replay_publishes_once(self, data, tmp_path, rng):
        ingestor = _ingestor(data, tmp_path)
        for _ in range(4):
            ingestor.submit(inserted=_random_batch(rng))
        recovered = StreamIngestor(
            build_label(PatternCounter(data), ("a", "b")),
            wal=WriteAheadLog(tmp_path / "wal"),
            config=StreamConfig(drift_threshold=None),
            replay=True,
        )
        assert recovered.publisher.version == 1
        assert len(recovered.publisher.latencies) == 1


class TestConfig:
    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(RegistryError):
            StreamConfig(compact_every=0)
        with pytest.raises(RegistryError):
            StreamConfig(drift_threshold=0.5)
        with pytest.raises(RegistryError):
            StreamConfig(drift_check_every=0)
        with pytest.raises(RegistryError):
            StreamConfig(drift_sample=0)
        with pytest.raises(RegistryError):
            StreamConfig(research_budget_seconds=0.0)
        with pytest.raises(RegistryError):
            StreamConfig(research_bound=0)

    def test_defaults_construct(self):
        config = StreamConfig()
        assert config.compact_every == 16
        assert config.fsync is True
