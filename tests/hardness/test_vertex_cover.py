"""Tests for the Appendix A reduction — the paper's lemmas, executed."""

import itertools

import pytest

from repro import Pattern, PatternCounter, evaluate_label
from repro.hardness.vertex_cover import (
    Graph,
    build_reduction,
    cover_from_attribute_set,
    decide_vertex_cover_via_labels,
    label_size_formula,
    vertex_cover_brute_force,
)


def path3() -> Graph:
    """The paper's Figure 11 example: v1 - v2 - v3."""
    return Graph.from_edges(["v1", "v2", "v3"], [("v1", "v2"), ("v2", "v3")])


def triangle() -> Graph:
    return Graph.from_edges(
        ["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")]
    )


def square() -> Graph:
    return Graph.from_edges(
        ["1", "2", "3", "4"],
        [("1", "2"), ("2", "3"), ("3", "4"), ("4", "1")],
    )


def k4() -> Graph:
    vertices = ["a", "b", "c", "d"]
    return Graph.from_edges(
        vertices, list(itertools.combinations(vertices, 2))
    )


class TestGraph:
    def test_validation(self):
        with pytest.raises(ValueError, match="self loop"):
            Graph.from_edges(["a", "b"], [("a", "a")])
        with pytest.raises(ValueError, match="off the graph"):
            Graph.from_edges(["a", "b"], [("a", "z")])
        with pytest.raises(ValueError, match="duplicate edge"):
            Graph.from_edges(["a", "b"], [("a", "b"), ("b", "a")])
        with pytest.raises(ValueError, match="at least one edge"):
            Graph.from_edges(["a", "b"], [])
        with pytest.raises(ValueError, match="two vertices"):
            Graph.from_edges(["a"], [])

    def test_is_vertex_cover(self):
        graph = path3()
        assert graph.is_vertex_cover({"v2"})
        assert graph.is_vertex_cover({"v1", "v3"})
        assert not graph.is_vertex_cover({"v1"})

    def test_brute_force(self):
        assert vertex_cover_brute_force(path3(), 1) == ("v2",)
        assert vertex_cover_brute_force(triangle(), 1) is None
        assert vertex_cover_brute_force(triangle(), 2) is not None


class TestReductionDatabase:
    def test_figure12_shape_for_path3(self):
        """The Figure 12 database: 2 edges, 3 vertices."""
        instance = build_reduction(path3(), k=1)
        data = instance.dataset
        assert data.attribute_names == ("A_E", "A_v1", "A_v2", "A_v3")
        # Edge tuples: 2 edges * 4 combos * |E|=2 copies = 16.
        # Adjacent pairs (2): 2 * 2 values * 2|E|^2=8 copies = 32.
        # Non-adjacent pairs (1): 4 combos * 2 copies = 8.
        assert data.n_rows == 16 + 32 + 8
        assert data.has_missing

    def test_pattern_counts_are_E(self):
        """Lemma A.5 setup: c_D(p) = |E| for every edge pattern."""
        for graph in (path3(), triangle(), square()):
            instance = build_reduction(graph, k=1)
            counter = PatternCounter(instance.dataset)
            for pattern in instance.patterns:
                assert counter.count(pattern) == graph.n_edges

    def test_vertex_value_fractions_are_half(self):
        """Lemma A.5: c_D({A_i=x1}) / (c_D(x1)+c_D(x2)) = 1/2."""
        instance = build_reduction(path3(), k=1)
        counter = PatternCounter(instance.dataset)
        for vertex in path3().vertices:
            assert counter.fraction(f"A_{vertex}", "x1") == pytest.approx(0.5)

    def test_edge_value_fractions_are_uniform(self):
        """Lemma A.5: c_D({A_E=x_r}) / sum = 1/|E|."""
        graph = square()
        instance = build_reduction(graph, k=1)
        counter = PatternCounter(instance.dataset)
        for r in range(graph.n_edges):
            assert counter.fraction("A_E", f"x{r + 1}") == pytest.approx(
                1 / graph.n_edges
            )

    def test_size_bound_formula(self):
        instance = build_reduction(square(), k=3)
        assert instance.size_bound == 2 * 4 + 4 * (1 + 2)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            build_reduction(path3(), k=0)


class TestLemmaA5:
    """Zero error iff A_E in S and the edge is covered."""

    def test_covering_attribute_set_gives_zero_error(self):
        graph = path3()
        instance = build_reduction(graph, k=1)
        counter = PatternCounter(instance.dataset)
        pattern_set = instance.pattern_set(counter)
        summary = evaluate_label(counter, ("A_E", "A_v2"), pattern_set)
        assert summary.max_abs == 0.0

    def test_partial_cover_has_positive_error(self):
        graph = path3()
        instance = build_reduction(graph, k=1)
        counter = PatternCounter(instance.dataset)
        pattern_set = instance.pattern_set(counter)
        summary = evaluate_label(counter, ("A_E", "A_v1"), pattern_set)
        assert summary.max_abs > 0.0

    def test_missing_edge_attribute_error_is_E_plus_one(self):
        """Lemma A.5 middle case: S = {A_i, A_j}, A_E ∉ S gives
        Est = 2|E| + 1, i.e. error exactly |E| + 1."""
        graph = path3()
        instance = build_reduction(graph, k=2)
        counter = PatternCounter(instance.dataset)
        pattern = instance.patterns[0]  # e1 = {v1, v2}
        pattern_set = instance.pattern_set(counter)
        summary = evaluate_label(counter, ("A_v1", "A_v2"), pattern_set)
        assert summary.max_abs >= graph.n_edges + 1 - 1e-9


class TestLemmaA8:
    """|L_S(D)| = 2|E'| + 4 * sum_{i=1}^{k-1} i, exactly."""

    @pytest.mark.parametrize(
        "graph_factory", [path3, triangle, square, k4]
    )
    def test_size_formula_every_subset(self, graph_factory):
        graph = graph_factory()
        instance = build_reduction(graph, k=1)
        counter = PatternCounter(instance.dataset)
        vertex_names = [f"A_{v}" for v in graph.vertices]
        for k in range(1, graph.n_vertices + 1):
            for combo in itertools.combinations(vertex_names, k):
                chosen = {name[2:] for name in combo}
                covered = sum(
                    1 for edge in graph.edges if edge & chosen
                )
                expected = label_size_formula(covered, k)
                assert counter.label_size(("A_E",) + combo) == expected


class TestPropositionA4:
    """VC of size <= k exists iff a fitting zero-error label exists."""

    @pytest.mark.parametrize(
        "graph_factory", [path3, triangle, square, k4]
    )
    def test_equivalence(self, graph_factory):
        graph = graph_factory()
        for k in range(1, graph.n_vertices):
            expected = vertex_cover_brute_force(graph, k) is not None
            assert decide_vertex_cover_via_labels(graph, k) == expected


class TestDecoding:
    def test_cover_from_attribute_set(self):
        cover = cover_from_attribute_set(path3(), ("A_E", "A_v2"))
        assert cover == ("v2",)
        assert path3().is_vertex_cover(cover)
