"""LabelStore: versioned snapshots, copy-on-write publish, isolation."""

from __future__ import annotations

import threading

import pytest

from repro import Dataset, PatternCounter, Pattern, build_label
from repro.core.flexlabel import greedy_flexible_label
from repro.serve import (
    BadRequestError,
    LabelStore,
    UnknownLabelError,
    UnsupportedOperationError,
)

GENDER_AGE = ("age group", "gender")


@pytest.fixture
def label(figure2_counter):
    return build_label(figure2_counter, GENDER_AGE)


@pytest.fixture
def store(label) -> LabelStore:
    store = LabelStore()
    store.publish("compas", label)
    return store


def _row(gender="Female", age="under 20", race="Hispanic", marital="single"):
    return Dataset.from_rows(
        ["gender", "age group", "race", "marital status"],
        [(gender, age, race, marital)],
    )


class TestPublishAndGet:
    def test_publish_returns_versioned_snapshot(self, store):
        snapshot = store.get("compas")
        assert snapshot.name == "compas"
        assert snapshot.version == 1
        assert snapshot.kind == "label"
        assert snapshot.estimator_name == "label"
        assert snapshot.total == 18

    def test_republish_increments_version(self, store, label):
        assert store.publish("compas", label).version == 2
        assert store.publish("compas", label).version == 3

    def test_versions_are_per_name(self, store, label):
        assert store.publish("other", label).version == 1
        assert store.get("compas").version == 1

    def test_get_unknown_name(self, store):
        with pytest.raises(UnknownLabelError, match="no label 'nope'"):
            store.get("nope")

    def test_catalog_and_names_sorted(self, store, label):
        store.publish("aaa", label)
        assert store.names() == ["aaa", "compas"]
        catalog = store.catalog()
        assert [entry["name"] for entry in catalog] == ["aaa", "compas"]
        assert catalog[1]["version"] == 1
        assert catalog[1]["size"] == label.size
        assert "compas" in store and len(store) == 2

    def test_drop(self, store):
        store.drop("compas")
        assert "compas" not in store
        with pytest.raises(UnknownLabelError):
            store.drop("compas")

    def test_unpublishable_artifact(self, store):
        with pytest.raises(BadRequestError, match="unsupported artifact"):
            store.publish("bad", object())

    def test_registry_driven_estimator_rejects_bad_backend(self, label):
        store = LabelStore()
        with pytest.raises(BadRequestError, match="cannot build estimator"):
            store.publish("x", label, estimator="sampling")
        with pytest.raises(BadRequestError, match="cannot build estimator"):
            store.publish("x", label, estimator="does_not_exist")

    def test_flexible_label_served_through_registry(self, figure2_counter):
        store = LabelStore()
        flexible = greedy_flexible_label(figure2_counter, 6)
        snapshot = store.publish("flex", flexible)
        assert snapshot.kind == "flexible"
        assert snapshot.estimator_name == "flexible"
        assert snapshot.estimate(Pattern({"gender": "Female"})) >= 0.0


class TestSnapshotEstimation:
    def test_estimate_matches_direct_estimator(self, store, figure2):
        snapshot = store.get("compas")
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        truth = PatternCounter(figure2).count(pattern)
        assert snapshot.estimate(pattern) == float(truth)

    def test_estimate_many_byte_identical_to_scalar(self, store, figure2):
        snapshot = store.get("compas")
        counter = PatternCounter(figure2)
        patterns = [
            Pattern({"gender": "Female"}),
            Pattern({"age group": "20-39", "race": "Hispanic"}),
            Pattern({"marital status": "single"}),
            Pattern({"gender": "Male", "age group": "under 20"}),
        ]
        assert snapshot.estimate_many(patterns) == [
            snapshot.estimate(p) for p in patterns
        ]
        del counter


class TestUpdate:
    def test_insert_publishes_new_version(self, store):
        before = store.get("compas")
        after = store.update("compas", inserted=_row())
        assert after.version == 2
        assert after.total == 19
        assert store.get("compas") is after
        # copy-on-write: the superseded snapshot is untouched
        assert before.total == 18
        assert before.artifact.total == 18

    def test_update_is_exact(self, store, figure2):
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        before = store.get("compas").estimate(pattern)
        after = store.update("compas", inserted=_row()).estimate(pattern)
        assert after == before + 1.0

    def test_insert_then_delete_round_trips(self, store):
        original = store.get("compas")
        batch = _row()
        store.update("compas", inserted=batch)
        final = store.update("compas", deleted=batch)
        assert final.version == 3
        assert final.artifact == original.artifact

    def test_update_needs_a_batch(self, store):
        with pytest.raises(BadRequestError, match="at least one of"):
            store.update("compas")

    def test_update_rejects_impossible_delete(self, store):
        huge = Dataset.from_rows(
            ["gender", "age group", "race", "marital status"],
            [("Nobody", "none", "none", "none")],
        )
        with pytest.raises(BadRequestError, match="update batch rejected"):
            store.update("compas", deleted=huge)

    def test_update_unsupported_for_flexible(self, figure2_counter):
        store = LabelStore()
        store.publish("flex", greedy_flexible_label(figure2_counter, 6))
        with pytest.raises(
            UnsupportedOperationError, match="subset labels"
        ):
            store.update("flex", inserted=_row())


class TestConcurrentReadersAndWriter:
    """The snapshot-isolation stress test.

    One maintainer publishes updates in a tight loop while several
    readers hammer ``get`` + ``estimate``.  Every observation must be
    explainable by exactly one published version: the (artifact,
    estimator) pair is frozen together, estimates match the artifact's
    own counts, and versions only move forward.
    """

    N_UPDATES = 40
    N_READERS = 4

    def test_snapshot_isolation_under_concurrent_updates(self, store):
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        base = store.get("compas").estimate(pattern)
        valid_estimates = {base + i for i in range(self.N_UPDATES + 1)}
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            last_version = 0
            while not stop.is_set():
                snapshot = store.get("compas")
                # the frozen pair: the estimator serves THIS artifact
                if snapshot.estimator.label is not snapshot.artifact:
                    failures.append("torn artifact/estimator pair")
                    return
                estimate = snapshot.estimate(pattern)
                expected = float(
                    snapshot.artifact.marginal_counts(GENDER_AGE).get(
                        ("under 20", "Female"), 0
                    )
                )
                if estimate != expected:
                    failures.append(
                        f"estimate {estimate} disagrees with its own "
                        f"snapshot ({expected})"
                    )
                    return
                if estimate not in valid_estimates:
                    failures.append(f"impossible estimate {estimate}")
                    return
                if snapshot.version < last_version:
                    failures.append("version moved backwards")
                    return
                last_version = snapshot.version

        readers = [
            threading.Thread(target=reader) for _ in range(self.N_READERS)
        ]
        for thread in readers:
            thread.start()
        try:
            for _ in range(self.N_UPDATES):
                store.update("compas", inserted=_row())
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not failures, failures[0]
        final = store.get("compas")
        assert final.version == 1 + self.N_UPDATES
        assert final.estimate(pattern) == base + self.N_UPDATES

    def test_concurrent_writers_lose_no_batches(self, store):
        """Writers are serialized: every insert lands exactly once."""
        n_writers, per_writer = 4, 10
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                for _ in range(per_writer):
                    store.update("compas", inserted=_row())
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(n_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        final = store.get("compas")
        assert final.total == 18 + n_writers * per_writer
        assert final.version == 1 + n_writers * per_writer


class TestEstimatorParamsSurviveMaintenance:
    def test_update_republishes_with_original_params(self, label):
        store = LabelStore()
        store.publish("x", label, estimator="label", seed=7)
        assert store.get("x").estimator_params == {"seed": 7}
        updated = store.update(
            "x",
            inserted=Dataset.from_rows(
                ["gender", "age group", "race", "marital status"],
                [("Female", "under 20", "Hispanic", "single")],
            ),
        )
        assert updated.version == 2
        assert updated.estimator_params == {"seed": 7}
