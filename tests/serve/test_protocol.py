"""Protocol dataclasses: parsing, validation, and the error mapping."""

from __future__ import annotations

import pytest

from repro import Pattern
from repro.core.pattern import Predicate
from repro.serve import (
    BadRequestError,
    ErrorResponse,
    EstimateRequest,
    EstimateResponse,
    ServeError,
    UnknownLabelError,
    UnsupportedOperationError,
)


class TestEstimateRequest:
    def test_single_pattern_payload(self):
        request = EstimateRequest.from_payload(
            "demo", {"pattern": {"gender": "F"}}
        )
        assert request.label == "demo"
        assert request.patterns == (Pattern({"gender": "F"}),)
        assert request.to_payload() == {"pattern": {"gender": "F"}}

    def test_multi_pattern_payload(self):
        request = EstimateRequest.from_payload(
            "demo", {"patterns": [{"a": "1"}, {"b": "2"}]}
        )
        assert len(request.patterns) == 2
        assert request.to_payload() == {
            "patterns": [{"a": "1"}, {"b": "2"}]
        }

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({}, "exactly one of"),
            ({"pattern": {}, "patterns": []}, "exactly one of"),
            ({"patterns": []}, "non-empty JSON array"),
            ({"patterns": "x"}, "non-empty JSON array"),
            ({"pattern": {}}, "non-empty JSON object"),
            ({"patterns": [{"a": "1"}, 7]}, "pattern 1"),
            ("not a mapping", "JSON object"),
        ],
    )
    def test_rejects_malformed_payloads(self, payload, message):
        with pytest.raises(BadRequestError, match=message):
            EstimateRequest.from_payload("demo", payload)

    def test_operator_object_parses_to_range_predicate(self):
        request = EstimateRequest.from_payload(
            "demo", {"pattern": {"age": {">=": "30"}, "gender": "F"}}
        )
        (pattern,) = request.patterns
        assert pattern == Pattern(
            {"age": Predicate(">=", "30"), "gender": "F"}
        )
        # to_payload round-trips through the same operator-object shape.
        payload = request.to_payload()
        assert payload == {
            "pattern": {"age": {">=": "30"}, "gender": "F"}
        }
        assert EstimateRequest.from_payload("demo", payload) == request

    def test_multi_pattern_range_round_trip(self):
        request = EstimateRequest.from_payload(
            "demo",
            {"patterns": [{"a": {"<": "5"}}, {"b": "2"}]},
        )
        assert request.patterns[0]["a"] == Predicate("<", "5")
        assert EstimateRequest.from_payload(
            "demo", request.to_payload()
        ) == request

    @pytest.mark.parametrize(
        "binding",
        [
            {"~=": "30"},  # unknown operator
            {">=": "30", "<": "40"},  # multi-key dict is ambiguous
            {},  # empty dict selects nothing
        ],
    )
    def test_bad_operator_objects_are_rejected(self, binding):
        with pytest.raises(BadRequestError, match="pattern 0"):
            EstimateRequest.from_payload(
                "demo", {"pattern": {"age": binding}}
            )

    def test_empty_name_and_patterns_rejected(self):
        with pytest.raises(BadRequestError, match="name a label"):
            EstimateRequest(label="", patterns=(Pattern({"a": "1"}),))
        with pytest.raises(BadRequestError, match="at least one pattern"):
            EstimateRequest(label="demo", patterns=())


class TestEstimateResponse:
    def test_round_trip(self):
        response = EstimateResponse(
            label="demo", version=3, estimates=(1.0, 2.5), batched=7
        )
        assert EstimateResponse.from_payload(response.to_payload()) == response

    def test_malformed_payload(self):
        with pytest.raises(BadRequestError, match="malformed"):
            EstimateResponse.from_payload({"label": "x"})


class TestErrorResponse:
    def test_serve_errors_carry_their_own_code_and_status(self):
        error = ErrorResponse.from_exception(UnknownLabelError("nope"))
        assert (error.code, error.status) == ("not_found", 404)
        error = ErrorResponse.from_exception(
            UnsupportedOperationError("flexible")
        )
        assert (error.code, error.status) == ("unsupported", 409)
        error = ErrorResponse.from_exception(BadRequestError("bad"))
        assert (error.code, error.status) == ("bad_request", 400)

    def test_estimator_key_errors_read_as_bad_request(self):
        error = ErrorResponse.from_exception(KeyError("value not recorded"))
        assert error.status == 400
        assert error.message == "value not recorded"

    def test_unexpected_exceptions_are_internal(self):
        error = ErrorResponse.from_exception(RuntimeError("boom"))
        assert (error.code, error.status) == ("internal", 500)

    def test_payload_shape(self):
        payload = ErrorResponse("bad_request", "msg").to_payload()
        assert payload == {"error": {"code": "bad_request", "message": "msg"}}

    def test_unknown_label_str_is_plain(self):
        # KeyError.__str__ would repr() the message; ours must not
        assert str(UnknownLabelError("no label 'x'")) == "no label 'x'"
        assert isinstance(UnknownLabelError("x"), ServeError)
