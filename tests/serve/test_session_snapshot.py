"""Regression tests: ``LabelingSession.update`` vs concurrent reads.

Before the serving layer, ``update()`` replaced the session's artifact
and its estimator in two separate attribute assignments; a reader
interleaving between them could observe the *new* artifact paired with
the *old* estimator (or estimate through a mid-swap mixture).  The
session now keeps the pair in one atomically-swapped state and every
read resolves it exactly once — these tests pin that contract.
"""

from __future__ import annotations

import threading

import pytest

from repro import Dataset, LabelingSession, Pattern, PatternCounter, build_label


@pytest.fixture
def session(figure2) -> LabelingSession:
    return LabelingSession(
        build_label(PatternCounter(figure2), ("age group", "gender"))
    )


def _row():
    return Dataset.from_rows(
        ["gender", "age group", "race", "marital status"],
        [("Female", "under 20", "Hispanic", "single")],
    )


class TestAtomicSwap:
    def test_update_swaps_artifact_and_estimator_together(self, session):
        old_artifact = session.artifact
        old_estimator = session.estimator
        session.update(inserted=_row())
        # the pair always matches: the estimator serves the artifact
        assert session.estimator.label is session.artifact
        assert session.artifact is not old_artifact
        # the superseded pair still answers its own version
        assert old_estimator.label is old_artifact
        assert old_artifact.total == 18
        assert session.artifact.total == 19

    def test_update_bumps_version(self, session):
        assert session.version == 1
        session.update(inserted=_row())
        assert session.version == 2
        session.update(deleted=_row())
        assert session.version == 3

    def test_snapshot_is_isolated_from_later_updates(self, session):
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        snapshot = session.snapshot("frozen")
        before = snapshot.estimate(pattern)
        session.update(inserted=_row())
        # the session moved on; the handed-out snapshot did not
        assert session.estimate(pattern) == before + 1.0
        assert snapshot.estimate(pattern) == before
        assert snapshot.version == 1
        assert session.version == 2

    def test_snapshot_carries_registry_backend_name(self, session):
        assert session.snapshot().estimator_name == "label"


class TestInterleavedUpdateAndEstimate:
    """The documented mutate-while-reading stress.

    A maintainer thread applies insert batches while reader threads run
    ``estimate_many``.  Every insert adds exactly one ``Female/under
    20`` row, so any value outside ``{base, base+1, ..., base+N}`` —
    or a pair of per-call answers that disagree with *each other* —
    would prove a torn read.  (The label covers both queried attributes,
    so every estimate is exact for whatever state it ran against.)
    """

    N_UPDATES = 50

    def test_estimate_many_never_sees_a_torn_state(self, session):
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        base = session.estimate(pattern)
        valid = {base + i for i in range(self.N_UPDATES + 1)}
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                first, second = session.estimate_many([pattern, pattern])
                if first != second:
                    failures.append(
                        f"one call, two versions: {first} != {second}"
                    )
                    return
                if first not in valid:
                    failures.append(f"impossible estimate {first}")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(self.N_UPDATES):
                session.update(inserted=_row())
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not failures, failures[0]
        assert session.estimate(pattern) == base + self.N_UPDATES

    def test_reader_pair_consistency_under_updates(self, session):
        """artifact/estimator resolved via the public properties always
        come from ONE published state when read through snapshot()."""
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                snapshot = session.snapshot()
                if snapshot.estimator.label is not snapshot.artifact:
                    failures.append("torn artifact/estimator pair")
                    return
                # a frozen snapshot agrees with its own artifact
                expected = float(snapshot.artifact.total)
                got = snapshot.estimate(
                    Pattern({"gender": "Female"})
                ) + snapshot.estimate(Pattern({"gender": "Male"}))
                if got != expected:
                    failures.append(
                        f"snapshot disagrees with itself: {got} != "
                        f"{expected}"
                    )
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(self.N_UPDATES):
                session.update(inserted=_row())
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not failures, failures[0]
