"""HTTP round trip against a live LabelService on an ephemeral port."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import (
    Dataset,
    LabelingSession,
    Pattern,
    PatternCounter,
    build_label,
)
from repro.serve import LabelService, LabelStore


@pytest.fixture
def session(figure2) -> LabelingSession:
    return LabelingSession(
        build_label(PatternCounter(figure2), ("age group", "gender"))
    )


@pytest.fixture
def service(session):
    with session.serve(name="compas") as service:
        yield service


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def _post(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def _error(callable_):
    with pytest.raises(urllib.error.HTTPError) as info:
        callable_()
    return info.value.code, json.loads(info.value.read().decode())


class TestCatalogEndpoints:
    def test_labels_catalog(self, service):
        status, payload = _get(service.url + "/labels")
        assert status == 200
        (entry,) = payload["labels"]
        assert entry["name"] == "compas"
        assert entry["version"] == 1
        assert entry["kind"] == "label"
        assert entry["total"] == 18

    def test_single_label_describe(self, service):
        status, payload = _get(service.url + "/labels/compas")
        assert status == 200
        assert payload["name"] == "compas"

    def test_card_formats(self, service):
        for fmt, marker in (
            ("text", "Total size"),
            ("markdown", "|"),
            ("html", "<table"),
        ):
            with urllib.request.urlopen(
                f"{service.url}/labels/compas/card?format={fmt}", timeout=10
            ) as response:
                assert response.status == 200
                assert marker in response.read().decode()

    def test_card_unknown_format(self, service):
        code, payload = _error(
            lambda: urllib.request.urlopen(
                service.url + "/labels/compas/card?format=pdf", timeout=10
            )
        )
        assert code == 400
        assert payload["error"]["code"] == "bad_request"

    def test_unknown_label_is_404(self, service):
        code, payload = _error(
            lambda: urllib.request.urlopen(
                service.url + "/labels/nope", timeout=10
            )
        )
        assert code == 404
        assert payload["error"]["code"] == "not_found"

    def test_unknown_endpoint_is_400(self, service):
        code, payload = _error(
            lambda: urllib.request.urlopen(
                service.url + "/nothing/here", timeout=10
            )
        )
        assert code == 400
        assert "no such endpoint" in payload["error"]["message"]


class TestEstimateEndpoint:
    def test_single_pattern_round_trip_is_byte_identical(
        self, service, session
    ):
        status, payload = _post(
            service.url + "/labels/compas/estimate",
            {"pattern": {"gender": "Female"}},
        )
        assert status == 200
        assert payload["estimates"] == [
            session.estimate(Pattern({"gender": "Female"}))
        ]
        assert payload["version"] == 1
        assert payload["label"] == "compas"
        assert payload["batched"] >= 1

    def test_batch_round_trip_is_byte_identical(self, service, session):
        bodies = [
            {"gender": "Female"},
            {"age group": "under 20", "gender": "Male"},
            {"race": "Hispanic", "marital status": "single"},
        ]
        status, payload = _post(
            service.url + "/labels/compas/estimate", {"patterns": bodies}
        )
        assert status == 200
        assert payload["estimates"] == [
            session.estimate(Pattern(body)) for body in bodies
        ]

    def test_concurrent_http_clients_all_get_exact_answers(
        self, service, session
    ):
        bodies = [
            {"gender": "Female"},
            {"age group": "20-39"},
            {"race": "Caucasian"},
            {"marital status": "married"},
        ]
        expected = {
            tuple(sorted(body.items())): session.estimate(Pattern(body))
            for body in bodies
        }
        failures: list[str] = []

        def client(body: dict) -> None:
            try:
                _, payload = _post(
                    service.url + "/labels/compas/estimate",
                    {"pattern": body},
                )
                if payload["estimates"] != [
                    expected[tuple(sorted(body.items()))]
                ]:
                    failures.append(f"wrong answer for {body}")
            except Exception as exc:  # noqa: BLE001 — surfaced below
                failures.append(f"{body}: {exc}")

        threads = [
            threading.Thread(target=client, args=(bodies[i % 4],))
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures[0]

    def test_malformed_body_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/labels/compas/estimate",
            data=b"{not json",
            method="POST",
        )
        code, payload = _error(
            lambda: urllib.request.urlopen(request, timeout=10)
        )
        assert code == 400
        assert "not valid JSON" in payload["error"]["message"]

    def test_missing_pattern_key_is_400(self, service):
        code, payload = _error(
            lambda: _post(service.url + "/labels/compas/estimate", {})
        )
        assert code == 400
        assert "exactly one of" in payload["error"]["message"]

    def test_unknown_attribute_is_400(self, service):
        code, payload = _error(
            lambda: _post(
                service.url + "/labels/compas/estimate",
                {"pattern": {"nope": "zzz"}},
            )
        )
        assert code == 400
        assert payload["error"]["code"] == "bad_request"

    def test_unknown_value_of_labeled_attribute_estimates_zero(
        self, service
    ):
        _, payload = _post(
            service.url + "/labels/compas/estimate",
            {"pattern": {"gender": "Unseen"}},
        )
        assert payload["estimates"] == [0.0]


class TestUpdateEndpoint:
    ROW = {
        "gender": "Female",
        "age group": "under 20",
        "race": "Hispanic",
        "marital status": "single",
    }

    def test_insert_bumps_version_and_counts(self, service, session):
        before = session.estimate(Pattern({"gender": "Female"}))
        status, payload = _post(
            service.url + "/labels/compas/update", {"inserted": [self.ROW]}
        )
        assert status == 200
        assert payload["version"] == 2
        assert payload["total"] == 19
        _, answer = _post(
            service.url + "/labels/compas/estimate",
            {"pattern": {"gender": "Female"}},
        )
        assert answer["version"] == 2
        assert answer["estimates"] == [before + 1.0]

    def test_insert_then_delete_round_trips(self, service):
        _post(
            service.url + "/labels/compas/update", {"inserted": [self.ROW]}
        )
        status, payload = _post(
            service.url + "/labels/compas/update", {"deleted": [self.ROW]}
        )
        assert status == 200
        assert payload["version"] == 3
        assert payload["total"] == 18

    def test_update_leaves_serving_session_untouched(self, service, session):
        _post(
            service.url + "/labels/compas/update", {"inserted": [self.ROW]}
        )
        # the session published a snapshot; its own state is independent
        assert session.artifact.total == 18
        assert session.version == 1

    def test_row_with_wrong_attributes_is_400(self, service):
        code, payload = _error(
            lambda: _post(
                service.url + "/labels/compas/update",
                {"inserted": [{"gender": "Female"}]},
            )
        )
        assert code == 400
        assert "exactly the label's attributes" in payload["error"]["message"]

    def test_unknown_field_is_400(self, service):
        code, payload = _error(
            lambda: _post(
                service.url + "/labels/compas/update",
                {"upserted": [self.ROW]},
            )
        )
        assert code == 400
        assert "unknown update fields" in payload["error"]["message"]

    def test_impossible_delete_is_400(self, service):
        code, payload = _error(
            lambda: _post(
                service.url + "/labels/compas/update",
                {
                    "deleted": [
                        {
                            "gender": "Nobody",
                            "age group": "none",
                            "race": "none",
                            "marital status": "none",
                        }
                    ]
                },
            )
        )
        assert code == 400
        assert "update batch rejected" in payload["error"]["message"]

    def test_update_on_flexible_label_is_409(self, figure2):
        flexible = LabelingSession.fit(
            figure2, 6, strategy="greedy_flexible"
        )
        with flexible.serve(name="flex") as service:
            code, payload = _error(
                lambda: _post(
                    service.url + "/labels/flex/update",
                    {"inserted": [self.ROW]},
                )
            )
        assert code == 409
        assert payload["error"]["code"] == "unsupported"


class TestServiceLifecycle:
    def test_ephemeral_port_resolves(self, service):
        assert service.port > 0
        assert service.url.startswith("http://127.0.0.1:")

    def test_multiple_labels_one_store(self, figure2, session):
        store = LabelStore()
        store.publish("a", session.artifact)
        store.publish("b", session.artifact)
        with LabelService(store) as service:
            _, payload = _get(service.url + "/labels")
        assert [e["name"] for e in payload["labels"]] == ["a", "b"]

    def test_maintainer_store_shared_with_http_readers(self, session):
        """An in-process maintainer publishing through the shared store
        is immediately visible to HTTP readers — the producer/consumer
        split of the paper, live."""
        store = LabelStore()
        store.publish("compas", session.artifact)
        with LabelService(store) as service:
            inserted = Dataset.from_rows(
                ["gender", "age group", "race", "marital status"],
                [("Male", "20-39", "Caucasian", "married")],
            )
            store.update("compas", inserted=inserted)
            _, payload = _post(
                service.url + "/labels/compas/estimate",
                {"pattern": {"gender": "Male"}},
            )
        assert payload["version"] == 2
        assert payload["estimates"] == [
            session.estimate(Pattern({"gender": "Male"})) + 1.0
        ]


class TestKeepAliveDiscipline:
    """Error responses must drain the request body: an HTTP/1.1 client
    reusing the connection would otherwise read garbage next."""

    def test_connection_survives_an_error_response(self, service, session):
        import http.client

        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            body = json.dumps({"pattern": {"gender": "Female"}})
            # 1: a 404 with an unread body on the same connection
            connection.request(
                "POST",
                "/labels/unknown/estimate",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # 2: the SAME connection must still speak clean HTTP
            connection.request(
                "POST",
                "/labels/compas/estimate",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read().decode())
            assert payload["estimates"] == [
                session.estimate(Pattern({"gender": "Female"}))
            ]
        finally:
            connection.close()

    def test_label_names_with_url_special_characters(self, session):
        from urllib.parse import quote

        store = LabelStore()
        store.publish("my label", session.artifact)
        with LabelService(store) as service:
            _, payload = _post(
                f"{service.url}/labels/{quote('my label', safe='')}/estimate",
                {"pattern": {"gender": "Female"}},
            )
        assert payload["label"] == "my label"


class TestScaleOutService:
    """Multi-worker + result-cache configuration through LabelService."""

    @pytest.fixture
    def scaled(self, session):
        with session.serve(
            name="compas", workers=4, cache_entries=64, window=0.0
        ) as service:
            yield service

    def test_stats_endpoint_shape(self, scaled):
        status, payload = _get(scaled.url + "/stats")
        assert status == 200
        assert payload["workers"]["count"] == 4
        assert len(payload["workers"]["per_worker"]) == 4
        assert payload["cache"]["max_entries"] == 64
        assert payload["store"]["labels"] == ["compas"]
        assert payload["store"]["generation"] == 1
        assert payload["store"]["versions"] == {"compas": 1}

    def test_repeat_requests_hit_the_cache(self, scaled, session):
        pattern = {"gender": "Female"}
        expected = session.estimate(Pattern(pattern))
        first = _post(
            scaled.url + "/labels/compas/estimate", {"pattern": pattern}
        )[1]
        second = _post(
            scaled.url + "/labels/compas/estimate", {"pattern": pattern}
        )[1]
        assert first["estimates"] == second["estimates"] == [expected]
        assert first["cached"] == 0
        assert second["cached"] == 1
        _, stats = _get(scaled.url + "/stats")
        assert stats["cache"]["hits"] >= 1
        assert 0.0 < stats["cache"]["hit_rate"] <= 1.0

    def test_update_bumps_generation_and_invalidates(self, scaled, session):
        pattern = {"gender": "Female"}
        url = scaled.url + "/labels/compas/estimate"
        before = _post(url, {"pattern": pattern})[1]["estimates"][0]
        _post(url, {"pattern": pattern})  # cached now
        _post(
            scaled.url + "/labels/compas/update",
            {
                "inserted": [
                    {
                        "gender": "Female",
                        "age group": "under 20",
                        "race": "Hispanic",
                        "marital status": "single",
                    }
                ]
                * 3
            },
        )
        after = _post(url, {"pattern": pattern})[1]
        assert after["cached"] == 0  # version bump → old entry unreachable
        assert after["estimates"][0] == before + 3
        _, stats = _get(scaled.url + "/stats")
        assert stats["store"]["generation"] == 2
        assert stats["store"]["versions"] == {"compas": 2}

    def test_stats_without_cache_is_null(self, session):
        with session.serve(name="compas") as service:
            _, payload = _get(service.url + "/stats")
            assert payload["cache"] is None
            assert payload["workers"]["count"] == 1

    def test_scaled_service_answers_are_byte_identical(self, scaled, session):
        patterns = [
            {"gender": "Female"},
            {"age group": {">=": "20-39"}},
            {"race": "Hispanic", "gender": "Male"},
        ]
        for _ in range(3):
            for pattern in patterns:
                _, payload = _post(
                    scaled.url + "/labels/compas/estimate",
                    {"pattern": pattern},
                )
                assert payload["estimates"] == [
                    session.estimate(Pattern(pattern))
                ]
