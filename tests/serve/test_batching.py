"""MicroBatcher: coalescing, byte-identical parity, failure isolation."""

from __future__ import annotations

import threading

import pytest

from repro import Pattern, build_label
from repro.serve import LabelStore, MicroBatcher
from repro.serve.batching import BatcherClosedError


@pytest.fixture
def snapshot(figure2_counter):
    store = LabelStore()
    return store.publish(
        "compas", build_label(figure2_counter, ("age group", "gender"))
    )


def _mixed_patterns():
    return [
        Pattern({"gender": "Female"}),
        Pattern({"age group": "under 20", "gender": "Male"}),
        Pattern({"race": "Hispanic"}),
        Pattern({"marital status": "divorced", "gender": "Female"}),
        Pattern({"age group": "20-39"}),
    ]


class TestParity:
    def test_single_request_byte_identical_to_scalar(self, snapshot):
        patterns = _mixed_patterns()
        with MicroBatcher(window=0.0) as batcher:
            batched = batcher.estimate(snapshot, patterns)
        assert batched == [snapshot.estimate(p) for p in patterns]

    def test_concurrent_requests_byte_identical_to_scalar(self, snapshot):
        """The micro-batch parity bar: whatever rode together, every
        response equals the direct per-pattern ``estimate`` call."""
        patterns = _mixed_patterns() * 8
        results: dict[int, list[float]] = {}
        barrier = threading.Barrier(8)

        with MicroBatcher(window=0.005) as batcher:

            def client(slot: int) -> None:
                barrier.wait()  # maximize coalescing
                chunk = patterns[slot * 5 : slot * 5 + 5]
                results[slot] = batcher.estimate(snapshot, chunk)

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)

        for slot in range(8):
            chunk = patterns[slot * 5 : slot * 5 + 5]
            assert results[slot] == [snapshot.estimate(p) for p in chunk]

    def test_response_independent_of_batch_composition(self, snapshot):
        """A pattern's answer never depends on its batch neighbours."""
        pattern = Pattern({"gender": "Female"})
        with MicroBatcher(window=0.0) as batcher:
            alone = batcher.estimate(snapshot, [pattern])
            crowded = batcher.estimate(
                snapshot, _mixed_patterns() + [pattern]
            )
        assert alone[0] == crowded[-1] == snapshot.estimate(pattern)


class TestCoalescing:
    def test_duplicates_collapse_to_one_kernel_slot(self, snapshot):
        pattern = Pattern({"gender": "Female"})
        with MicroBatcher(window=0.05) as batcher:
            values = batcher.estimate(snapshot, [pattern] * 10)
        assert values == [snapshot.estimate(pattern)] * 10
        assert batcher.stats.collapsed_duplicates == 9
        assert batcher.stats.patterns == 10

    def test_concurrent_submissions_share_flushes(self, snapshot):
        patterns = _mixed_patterns()
        with MicroBatcher(window=0.05, max_batch=4096) as batcher:
            barrier = threading.Barrier(6)

            def client() -> None:
                barrier.wait()
                batcher.estimate(snapshot, patterns)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            stats = batcher.stats
        assert stats.requests == 6
        # at least some requests coalesced: fewer flushes than requests
        assert stats.flushes < stats.requests
        assert stats.largest_batch > len(patterns)
        assert stats.collapsed_duplicates > 0  # 6 clients, same patterns

    def test_ticket_reports_batch_size(self, snapshot):
        with MicroBatcher(window=0.0) as batcher:
            ticket = batcher.submit(snapshot, _mixed_patterns())
            ticket.result(timeout=10)
        assert ticket.batched >= len(_mixed_patterns())
        assert ticket.done()


class TestFailures:
    def test_unknown_value_of_labeled_attribute_estimates_zero(
        self, snapshot
    ):
        # Not an error: an unseen value of an attribute in S has a true
        # count of 0, and both the scalar and the batched path say so.
        unseen = Pattern({"gender": "Unseen"})
        with MicroBatcher(window=0.0) as batcher:
            assert batcher.estimate(snapshot, [unseen]) == [0.0]
        assert snapshot.estimate(unseen) == 0.0

    def test_unknown_attribute_raises_in_caller(self, snapshot):
        with MicroBatcher(window=0.0) as batcher:
            with pytest.raises(KeyError, match="not recorded"):
                batcher.estimate(snapshot, [Pattern({"nope": "zzz"})])

    def test_failing_request_does_not_poison_the_batch(self, snapshot):
        """The error lands only on the request that owns the bad
        pattern; co-batched good requests still get their answers."""
        good = Pattern({"gender": "Female"})
        with MicroBatcher(window=0.05) as batcher:
            bad_ticket = batcher.submit(
                snapshot, (Pattern({"nope": "zzz"}),)
            )
            good_ticket = batcher.submit(snapshot, (good,))
            with pytest.raises(KeyError, match="not recorded"):
                bad_ticket.result(timeout=10)
            assert good_ticket.result(timeout=10) == [
                snapshot.estimate(good)
            ]

    def test_empty_request_rejected(self, snapshot):
        with MicroBatcher(window=0.0) as batcher:
            with pytest.raises(ValueError, match="at least one pattern"):
                batcher.submit(snapshot, ())

    def test_submit_after_close(self, snapshot):
        batcher = MicroBatcher(window=0.0)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(snapshot, (Pattern({"gender": "Female"}),))

    def test_close_drains_pending(self, snapshot):
        batcher = MicroBatcher(window=0.2)
        ticket = batcher.submit(snapshot, (Pattern({"gender": "Female"}),))
        batcher.close()
        assert ticket.result(timeout=10) == [
            snapshot.estimate(Pattern({"gender": "Female"}))
        ]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(window=-1)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)


class TestSnapshotAffinity:
    def test_batch_spanning_two_versions_answers_each_from_its_own(
        self, snapshot, figure2_counter
    ):
        """Requests admitted with different snapshots never mix, even
        inside one coalesced flush."""
        store = LabelStore()
        old = store.publish(
            "compas", build_label(figure2_counter, ("age group", "gender"))
        )
        from repro import Dataset

        new = store.update(
            "compas",
            inserted=Dataset.from_rows(
                ["gender", "age group", "race", "marital status"],
                [("Female", "under 20", "Hispanic", "single")] * 3,
            ),
        )
        pattern = Pattern({"gender": "Female", "age group": "under 20"})
        with MicroBatcher(window=0.05) as batcher:
            old_ticket = batcher.submit(old, (pattern,))
            new_ticket = batcher.submit(new, (pattern,))
            assert old_ticket.result(10) == [old.estimate(pattern)]
            assert new_ticket.result(10) == [new.estimate(pattern)]
        assert new.estimate(pattern) == old.estimate(pattern) + 3


class TestMaxBatchBound:
    def test_backlog_is_answered_in_bounded_kernel_calls(self, snapshot):
        """A pile-up larger than max_batch must be sliced, never handed
        to estimate_many as one unbounded call."""
        patterns = [
            Pattern({"gender": g, "age group": a, "race": r})
            for g in ("Female", "Male")
            for a in ("under 20", "20-39")
            for r in ("Hispanic", "Caucasian", "African-American")
        ]
        with MicroBatcher(window=0.05, max_batch=5) as batcher:
            values = batcher.estimate(snapshot, patterns)
            kernel_calls = batcher.stats.kernel_calls
        assert values == [snapshot.estimate(p) for p in patterns]
        assert kernel_calls >= 3  # 12 distinct patterns / max_batch 5


class TestWorkerDeath:
    """A dying worker thread must never leave callers hanging."""

    class _Bomb:
        """Snapshot stand-in whose kernel raises a BaseException —
        the one class of failure that escapes _flush's per-group and
        per-ticket isolation."""

        def estimate_many(self, patterns):
            raise KeyboardInterrupt("kernel interrupted mid-flush")

    def test_crash_poisons_waiters_and_rejects_new_submits(
        self, snapshot, monkeypatch
    ):
        # The worker re-raises after cleanup; keep its unhandled-
        # exception traceback out of the test output.
        monkeypatch.setattr(
            threading, "excepthook", lambda args: None
        )
        batcher = MicroBatcher(window=0.05)
        ticket = batcher.submit(
            self._Bomb(), (Pattern({"gender": "Female"}),)
        )
        with pytest.raises(BatcherClosedError):
            ticket.result(timeout=10)
        batcher._worker.join(timeout=10)
        assert not batcher._worker.is_alive()
        # The batcher closed itself: new work is refused with the same
        # typed error, and close() remains safe to call.
        with pytest.raises(BatcherClosedError):
            batcher.submit(snapshot, (Pattern({"gender": "Female"}),))
        batcher.close()
        batcher.close()

    def test_crash_poisons_not_yet_flushed_tickets(self, monkeypatch):
        monkeypatch.setattr(
            threading, "excepthook", lambda args: None
        )
        batcher = MicroBatcher(window=0.2)
        doomed = batcher.submit(
            self._Bomb(), (Pattern({"gender": "Female"}),)
        )
        with pytest.raises(BatcherClosedError):
            doomed.result(timeout=10)
        batcher._worker.join(timeout=10)
        # A ticket that slipped into the pending queue before the crash
        # was noticed must also fail fast, not hang forever.
        with pytest.raises(BatcherClosedError):
            batcher.submit(self._Bomb(), (Pattern({"gender": "Male"}),))
