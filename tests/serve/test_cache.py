"""ResultCache: hit/miss/eviction accounting, admission, version keying."""

from __future__ import annotations

import threading

import pytest

from repro import Pattern
from repro.serve import ResultCache


class TestAccounting:
    def test_hit_miss_counters(self):
        cache = ResultCache(8)
        key = ("label", 1, Pattern({"gender": "F"}))
        assert cache.get(key) is None
        assert cache.put(key, 3.0)
        assert cache.get(key) == 3.0
        assert cache.get(key) == 3.0
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.admitted == 1

    def test_eviction_counted_and_size_bounded(self):
        cache = ResultCache(4)
        # Make each key warm enough to win admission over the previous
        # residents: two get-misses per key before its put.
        for i in range(10):
            for _ in range(2 + i):
                cache.get(i)
            cache.put(i, float(i))
        assert len(cache) == 4
        assert cache.stats.evictions == cache.stats.admitted - 4

    def test_describe_payload_shape(self):
        cache = ResultCache(4)
        cache.get("k")
        cache.put("k", 1.0)
        payload = cache.describe()
        assert payload["entries"] == 1
        assert payload["max_entries"] == 4
        assert set(payload) >= {
            "hits",
            "misses",
            "hit_rate",
            "admitted",
            "rejected_admissions",
            "evictions",
        }

    def test_zero_value_is_a_hit(self):
        """A cached estimate of 0.0 (falsy!) must not read as a miss."""
        cache = ResultCache(4)
        cache.put("zero", 0.0)
        assert cache.get("zero") == 0.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(0)


class TestAdmission:
    def test_one_off_flood_does_not_evict_the_hot_set(self):
        """The bounded-memory acceptance bar: a flood of distinct
        never-repeated keys bounces off the admission filter while the
        warm hot set stays resident, and the entry count never exceeds
        the bound."""
        cache = ResultCache(32)
        hot = [("hot", 1, i) for i in range(32)]
        for key in hot:  # fill
            cache.get(key)
            cache.put(key, 1.0)
        for _ in range(5):  # warm: sketch frequencies well above 1
            for key in hot:
                assert cache.get(key) == 1.0
        flood_rejected_before = cache.stats.rejected
        for i in range(10_000):
            key = ("oneoff", 1, i)
            if cache.get(key) is None:
                cache.put(key, 0.0)
            # Hot traffic continues alongside the flood (that's what
            # makes it hot) — and every one of these asserts residency:
            # an evicted hot key would come back None here.
            assert cache.get(hot[i % len(hot)]) == 1.0
        assert len(cache) <= 32
        for key in hot:  # every hot entry survived the flood
            assert key in cache
        assert cache.stats.rejected > flood_rejected_before

    def test_recurring_key_displaces_a_cold_resident(self):
        cache = ResultCache(2)
        cache.get("a"), cache.put("a", 1.0)
        cache.get("b"), cache.put("b", 2.0)
        # "c" becomes strictly warmer than the LRU resident "a".
        for _ in range(4):
            cache.get("c")
        assert cache.put("c", 3.0)
        assert "c" in cache and len(cache) == 2
        assert cache.stats.evictions == 1


class TestVersionKeying:
    def test_old_version_entries_are_unreachable_after_publish(self):
        """Invalidation-for-free: a version bump changes every key, so
        a stale entry can never be served again."""
        cache = ResultCache(8)
        pattern = Pattern({"gender": "F"})
        cache.put(("demo", 1, pattern), 10.0)
        assert cache.get(("demo", 1, pattern)) == 10.0
        # After a publish the reader resolves version 2 — the v1 entry
        # is simply never looked up again.
        assert cache.get(("demo", 2, pattern)) is None
        cache.put(("demo", 2, pattern), 12.0)
        assert cache.get(("demo", 2, pattern)) == 12.0


class TestConcurrency:
    def test_concurrent_get_put_is_consistent(self):
        cache = ResultCache(64)
        keys = [("k", 1, i % 16) for i in range(256)]
        errors: list[Exception] = []

        def worker() -> None:
            try:
                for key in keys:
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, float(key[2]))
                    else:
                        assert value == float(key[2])
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(cache) <= 64
