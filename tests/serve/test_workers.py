"""WorkerGroup: multi-worker parity, cache integration, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro import Pattern, build_label
from repro.serve import (
    BatcherClosedError,
    LabelStore,
    ResultCache,
    WorkerGroup,
)


@pytest.fixture
def snapshot(figure2_counter):
    store = LabelStore()
    return store.publish(
        "compas", build_label(figure2_counter, ("age group", "gender"))
    )


def _mixed_traffic() -> list[Pattern]:
    """Equality and range patterns, hot-skewed with a distinct tail."""
    hot = [
        Pattern({"gender": "Female"}),
        Pattern({"age group": {">=": "20-39"}}),
        Pattern({"gender": "Male", "age group": "under 20"}),
    ]
    tail = [
        Pattern({"race": race, "gender": gender})
        for race in ("Hispanic", "Caucasian", "African-American")
        for gender in ("Female", "Male")
    ] + [
        Pattern({"marital status": {"<=": status}})
        for status in ("divorced", "married", "single")
    ]
    return (hot * 10 + tail) * 4


class TestParity:
    def test_multi_worker_matches_serial_path(self, snapshot):
        patterns = _mixed_traffic()
        serial = [snapshot.estimate(p) for p in patterns]
        with WorkerGroup(workers=4, window=0.0) as group:
            result = group.estimate(snapshot, patterns)
        assert result.values == serial
        assert result.cached == 0

    def test_concurrent_mixed_traffic_stress_byte_identical(self, snapshot):
        """The scale-out acceptance bar: many client threads, mixed
        equality/range traffic, 4 workers + cache — every response
        byte-identical to the serial scalar path."""
        patterns = _mixed_traffic()
        serial = {p: snapshot.estimate(p) for p in set(patterns)}
        mismatches: list[str] = []
        barrier = threading.Barrier(8)

        with WorkerGroup(
            workers=4, window=0.001, cache=ResultCache(16)
        ) as group:

            def client(seed: int) -> None:
                barrier.wait()
                rotated = patterns[seed:] + patterns[:seed]
                for pattern in rotated:
                    got = group.estimate(snapshot, (pattern,)).values[0]
                    if got != serial[pattern]:
                        mismatches.append(
                            f"{pattern}: {got} != {serial[pattern]}"
                        )

            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not mismatches, mismatches[0]
            # Skewed traffic through a 16-entry cache must actually hit.
            assert group.cache.stats.hits > 0
            assert len(group.cache) <= 16


class TestCacheIntegration:
    def test_hits_short_circuit_the_workers(self, snapshot):
        pattern = Pattern({"gender": "Female"})
        with WorkerGroup(workers=2, cache=ResultCache(8)) as group:
            first = group.estimate(snapshot, (pattern,))
            assert (first.batched, first.cached) == (1, 0)
            kernel_calls = group.stats.kernel_calls
            second = group.estimate(snapshot, (pattern,))
            assert (second.batched, second.cached) == (0, 1)
            assert second.values == first.values
            # Fully cached: no new kernel work happened.
            assert group.stats.kernel_calls == kernel_calls

    def test_partial_hit_enqueues_only_the_misses(self, snapshot):
        hot = Pattern({"gender": "Female"})
        cold = Pattern({"age group": "under 20"})
        with WorkerGroup(workers=2, cache=ResultCache(8)) as group:
            group.estimate(snapshot, (hot,))
            mixed = group.estimate(snapshot, (hot, cold))
            assert mixed.cached == 1
            assert mixed.values == [
                snapshot.estimate(hot),
                snapshot.estimate(cold),
            ]

    def test_publish_invalidates_without_any_flush(self, figure2_counter):
        """Update the label → the new snapshot's version changes every
        cache key, so old-version entries are never served again."""
        store = LabelStore()
        label = build_label(figure2_counter, ("age group", "gender"))
        v1 = store.publish("compas", label)
        pattern = Pattern({"gender": "Female"})
        with WorkerGroup(workers=2, cache=ResultCache(8)) as group:
            before = group.estimate(snapshot=v1, patterns=(pattern,))
            assert group.estimate(v1, (pattern,)).cached == 1
            from repro import Dataset

            inserted = Dataset.from_rows(
                list(label.attribute_order),
                [("Female", "under 20", "Hispanic", "single")] * 3,
            )
            v2 = store.update("compas", inserted=inserted)
            assert v2.version == v1.version + 1
            after = group.estimate(v2, (pattern,))
            # The first v2 request is a miss (stale entry unreachable)
            # and its answer reflects the inserted rows.
            assert after.cached == 0
            assert after.values[0] == before.values[0] + 3
            # The superseded snapshot still answers from its own cache
            # entry — in-flight readers are unaffected by the publish.
            assert group.estimate(v1, (pattern,)).values == before.values


class TestLifecycleAndStats:
    def test_stats_aggregate_across_workers(self, snapshot):
        patterns = [
            Pattern({"gender": "Female"}),
            Pattern({"gender": "Male"}),
            Pattern({"age group": "under 20"}),
            Pattern({"race": "Hispanic"}),
        ]
        with WorkerGroup(workers=4, window=0.0) as group:
            for pattern in patterns * 8:
                group.estimate(snapshot, (pattern,))
            described = group.describe()
        assert described["count"] == 4
        assert len(described["per_worker"]) == 4
        totals = described["totals"]
        assert totals["requests"] == 32
        assert totals["requests"] == sum(
            w["requests"] for w in described["per_worker"]
        )
        # Hash affinity: the same pattern always lands on one worker.
        with WorkerGroup(workers=4, window=0.0) as group:
            for _ in range(16):
                group.estimate(snapshot, (patterns[0],))
            busy = [
                w["requests"] for w in group.describe()["per_worker"]
            ]
        assert sorted(busy)[:3] == [0, 0, 0]

    def test_close_is_idempotent_and_rejects_new_submits(self, snapshot):
        group = WorkerGroup(workers=2)
        group.estimate(snapshot, (Pattern({"gender": "Female"}),))
        group.close()
        group.close()
        with pytest.raises(BatcherClosedError):
            group.submit(snapshot, (Pattern({"gender": "Female"}),))

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerGroup(workers=0)
