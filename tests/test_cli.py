"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro import write_csv
from repro.cli import main


@pytest.fixture
def csv_path(tmp_path, figure2):
    path = tmp_path / "data.csv"
    write_csv(figure2, path)
    return path


@pytest.fixture
def label_path(tmp_path, csv_path):
    out = tmp_path / "label.json"
    main(["label", str(csv_path), "--bound", "5", "-o", str(out)])
    return out


class TestLabelCommand:
    def test_writes_valid_label_json(self, label_path):
        payload = json.loads(label_path.read_text())
        assert payload["attributes"] == ["age group", "marital status"]
        assert payload["total"] == 18
        assert len(payload["pc"]) <= 5

    def test_stdout_mode(self, csv_path, capsys):
        assert main(["label", str(csv_path), "--bound", "5"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["total"] == 18

    def test_naive_algorithm_flag(self, csv_path, tmp_path):
        out = tmp_path / "naive.json"
        code = main(
            [
                "label",
                str(csv_path),
                "--bound",
                "5",
                "--algorithm",
                "naive",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["attributes"] == [
            "age group",
            "marital status",
        ]

    def test_sharded_and_chunked_label_matches_monolithic(
        self, csv_path, tmp_path, label_path
    ):
        out = tmp_path / "sharded.json"
        code = main(
            [
                "label",
                str(csv_path),
                "--bound",
                "5",
                "--shards",
                "3",
                "--chunk-rows",
                "5",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text() == label_path.read_text()

    def test_envelope_flag_writes_current_format(self, csv_path, tmp_path):
        out = tmp_path / "envelope.json"
        code = main(
            ["label", str(csv_path), "--bound", "5", "--envelope", "-o", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-label/4"
        assert payload["kind"] == "label"

    def test_greedy_flexible_strategy_writes_envelope(
        self, csv_path, tmp_path
    ):
        out = tmp_path / "flex.json"
        code = main(
            [
                "label",
                str(csv_path),
                "--bound",
                "5",
                "--algorithm",
                "greedy_flexible",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "flexible"


class TestCardCommand:
    def test_text_card(self, label_path, capsys):
        assert main(["card", str(label_path)]) == 0
        out = capsys.readouterr().out
        assert "Total size: 18" in out

    def test_markdown_card(self, label_path, capsys):
        main(["card", str(label_path), "--format", "markdown"])
        assert "| Attribute |" in capsys.readouterr().out

    def test_html_card(self, label_path, capsys):
        main(["card", str(label_path), "--format", "html"])
        assert "<table>" in capsys.readouterr().out

    def test_card_with_csv_includes_errors(
        self, label_path, csv_path, capsys
    ):
        main(["card", str(label_path), "--csv", str(csv_path)])
        assert "Maximal error" in capsys.readouterr().out

    def test_card_rejects_flexible_artifact(self, csv_path, tmp_path):
        out = tmp_path / "flex.json"
        main(
            [
                "label",
                str(csv_path),
                "--bound",
                "5",
                "--algorithm",
                "greedy_flexible",
                "-o",
                str(out),
            ]
        )
        with pytest.raises(SystemExit, match="subset labels only"):
            main(["card", str(out)])


class TestEstimateCommand:
    def test_exact_estimate(self, label_path, capsys):
        code = main(
            [
                "estimate",
                str(label_path),
                "age group=20-39",
                "marital status=married",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert out == "6.0 (exact)"

    def test_estimate_outside_s(self, label_path, capsys):
        main(["estimate", str(label_path), "gender=Female"])
        out = capsys.readouterr().out.strip()
        assert out.startswith("9.0")

    def test_bad_binding_rejected(self, label_path):
        with pytest.raises(SystemExit, match="attr=value"):
            main(["estimate", str(label_path), "not-a-binding"])

    def test_flexible_artifact_estimates(self, csv_path, tmp_path, capsys):
        out = tmp_path / "flex.json"
        main(
            [
                "label",
                str(csv_path),
                "--bound",
                "5",
                "--algorithm",
                "greedy_flexible",
                "-o",
                str(out),
            ]
        )
        code = main(["estimate", str(out), "gender=Female"])
        assert code == 0
        assert capsys.readouterr().out.strip().startswith("9.0")

    def test_fit_csv_one_shot_estimate(self, csv_path, capsys):
        code = main(
            [
                "estimate",
                "--fit-csv",
                str(csv_path),
                "--bound",
                "5",
                "gender=Female",
            ]
        )
        assert code == 0
        assert float(capsys.readouterr().out.split()[0]) > 0

    def test_fit_csv_sharded_matches_plain(self, csv_path, capsys):
        main(["estimate", "--fit-csv", str(csv_path), "--bound", "5",
              "gender=Female"])
        plain = capsys.readouterr().out
        main(["estimate", "--fit-csv", str(csv_path), "--bound", "5",
              "--shards", "3", "--chunk-rows", "6", "gender=Female"])
        assert capsys.readouterr().out == plain

    def test_fit_csv_rejects_non_binding_positional(self, csv_path):
        with pytest.raises(SystemExit, match="bindings"):
            main(["estimate", "--fit-csv", str(csv_path), "notabinding"])

    def test_estimate_without_label_or_fit_csv(self):
        with pytest.raises(SystemExit, match="label file"):
            main(["estimate"])

    def test_shard_flags_without_fit_csv_rejected(self, label_path):
        with pytest.raises(SystemExit, match="only apply to --fit-csv"):
            main(["estimate", "--shards", "4", str(label_path),
                  "gender=Female"])
        with pytest.raises(SystemExit, match="only apply to --fit-csv"):
            main(["estimate", "--chunk-rows", "10", str(label_path),
                  "gender=Female"])

    def test_invalid_shard_values_rejected(self, csv_path):
        with pytest.raises(SystemExit, match="--shards must be"):
            main(["label", str(csv_path), "--shards", "0"])
        with pytest.raises(SystemExit, match="--chunk-rows must be"):
            main(["label", str(csv_path), "--chunk-rows", "0"])
        with pytest.raises(SystemExit, match="--shards must be"):
            main(["estimate", "--fit-csv", str(csv_path), "--shards", "-2",
                  "gender=Female"])

    def test_unknown_kind_is_a_clean_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"format": "repro-label/2", "kind": "sketch"})
        )
        with pytest.raises(SystemExit, match="unknown artifact kind"):
            main(["estimate", str(bad), "gender=Female"])

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such label file"):
            main(["estimate", str(tmp_path / "nope.json"), "g=F"])


class TestReportCommand:
    def test_report_to_stdout(self, csv_path, capsys):
        code = main(["report", str(csv_path), "--bound", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# Dataset report: data.csv")
        assert "## Attribute profile" in out
        assert "## Pattern count-based label" in out

    def test_report_to_file(self, csv_path, tmp_path):
        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                str(csv_path),
                "--bound",
                "5",
                "--sensitive",
                "gender,race",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert "Fitness-for-use warnings" in out.read_text()


class TestProfileCommand:
    def test_reports_warnings(self, csv_path, capsys):
        code = main(
            [
                "profile",
                str(csv_path),
                "--sensitive",
                "gender,race",
                "--min-share",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "underrepresented" in out

    def test_strict_mode_nonzero_exit(self, csv_path):
        code = main(
            [
                "profile",
                str(csv_path),
                "--sensitive",
                "gender,race",
                "--min-share",
                "0.2",
                "--strict",
            ]
        )
        assert code == 1

    def test_no_findings(self, csv_path, capsys):
        code = main(
            [
                "profile",
                str(csv_path),
                "--sensitive",
                "gender",
                "--min-share",
                "0.0",
                "--max-share",
                "0.99",
            ]
        )
        assert code == 0
        assert "no findings" in capsys.readouterr().out


class TestEstimateWorkloadBatch:
    """The --workload batch path: estimate_many over a query file."""

    @pytest.fixture
    def workload_path(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"age group": "20-39", "marital status": "married"},
                    {"gender": "Female"},
                    {"gender": "Male", "race": "Caucasian"},
                ]
            )
        )
        return path

    def test_batch_matches_inline_estimates(
        self, label_path, workload_path, capsys
    ):
        assert main(
            ["estimate", str(label_path), "--workload", str(workload_path)]
        ) == 0
        batch_lines = capsys.readouterr().out.strip().splitlines()
        assert len(batch_lines) == 3

        inline = []
        for bindings in (
            ["age group=20-39", "marital status=married"],
            ["gender=Female"],
            ["gender=Male", "race=Caucasian"],
        ):
            main(["estimate", str(label_path)] + bindings)
            inline.append(
                capsys.readouterr().out.strip().split(" ")[0]
            )
        assert batch_lines == inline

    def test_workload_through_any_registered_algorithm(
        self, csv_path, workload_path, tmp_path, capsys
    ):
        """--algorithm dispatch ends in the same batch estimate path."""
        for algorithm in ("naive", "top-down", "greedy_flexible"):
            out = tmp_path / f"{algorithm}.json"
            assert main(
                [
                    "label",
                    str(csv_path),
                    "--bound",
                    "5",
                    "--algorithm",
                    algorithm,
                    "-o",
                    str(out),
                ]
            ) == 0
            capsys.readouterr()  # drop the label summary
            assert main(
                ["estimate", str(out), "--workload", str(workload_path)]
            ) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            assert len(lines) == 3, algorithm
            assert all(float(line) >= 0 for line in lines), algorithm

    def test_range_operator_inline_matches_workload_file(
        self, label_path, tmp_path, capsys
    ):
        """`attr>=value` inline == `{attr: {">=": value}}` in a file."""
        assert main(
            [
                "estimate",
                str(label_path),
                "age group>=under 20",
                "gender=Female",
            ]
        ) == 0
        inline = capsys.readouterr().out.strip().split(" ")[0]

        workload = tmp_path / "ranged.json"
        workload.write_text(
            json.dumps(
                [{"age group": {">=": "under 20"}, "gender": "Female"}]
            )
        )
        assert main(
            ["estimate", str(label_path), "--workload", str(workload)]
        ) == 0
        assert capsys.readouterr().out.strip() == inline

    def test_unknown_operator_token_is_usage_error(self, label_path):
        with pytest.raises(SystemExit, match="attr>=value"):
            main(["estimate", str(label_path), "gender~Female"])

    def test_invalid_json_is_a_clean_error(self, label_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["estimate", str(label_path), "--workload", str(bad)])

    def test_non_array_payload_rejected(self, label_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"gender": "Female"}))
        with pytest.raises(SystemExit, match="non-empty JSON array"):
            main(["estimate", str(label_path), "--workload", str(bad)])

    def test_non_object_entry_rejected(self, label_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"gender": "Female"}, ["race", "x"]]))
        with pytest.raises(SystemExit, match="entry 1"):
            main(["estimate", str(label_path), "--workload", str(bad)])

    def test_empty_pattern_entry_rejected(self, label_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{}]))
        with pytest.raises(SystemExit, match="entry 0"):
            main(["estimate", str(label_path), "--workload", str(bad)])

    def test_missing_workload_file(self, label_path, tmp_path):
        with pytest.raises(SystemExit, match="no such workload file"):
            main(
                [
                    "estimate",
                    str(label_path),
                    "--workload",
                    str(tmp_path / "nope.json"),
                ]
            )

    def test_bindings_and_workload_conflict(
        self, label_path, workload_path
    ):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "estimate",
                    str(label_path),
                    "gender=Female",
                    "--workload",
                    str(workload_path),
                ]
            )


class TestExitCodes:
    """Every failure class exits with its own distinct non-zero code."""

    def _code(self, argv):
        with pytest.raises(SystemExit) as info:
            main(argv)
        return info.value.code

    def test_missing_label_file(self, tmp_path):
        from repro.cli import EXIT_MISSING_FILE

        code = self._code(["estimate", str(tmp_path / "nope.json"), "g=F"])
        assert code == EXIT_MISSING_FILE

    def test_missing_csv_file(self, tmp_path):
        from repro.cli import EXIT_MISSING_FILE

        assert (
            self._code(["label", str(tmp_path / "nope.csv")])
            == EXIT_MISSING_FILE
        )
        assert (
            self._code(
                ["profile", str(tmp_path / "nope.csv"), "--sensitive", "g"]
            )
            == EXIT_MISSING_FILE
        )

    def test_malformed_label_file(self, tmp_path):
        from repro.cli import EXIT_MALFORMED

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert self._code(["estimate", str(bad), "g=F"]) == EXIT_MALFORMED

    def test_malformed_workload_file(self, label_path, tmp_path):
        from repro.cli import EXIT_MALFORMED

        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        code = self._code(
            ["estimate", str(label_path), "--workload", str(bad)]
        )
        assert code == EXIT_MALFORMED

    def test_pattern_mismatch(self, label_path):
        from repro.cli import EXIT_MISMATCH

        assert (
            self._code(["estimate", str(label_path), "nope=zzz"])
            == EXIT_MISMATCH
        )

    def test_usage_errors(self, label_path, csv_path):
        from repro.cli import EXIT_USAGE

        assert (
            self._code(["estimate", str(label_path), "notabinding"])
            == EXIT_USAGE
        )
        assert (
            self._code(["label", str(csv_path), "--shards", "0"])
            == EXIT_USAGE
        )

    def test_unreachable_server(self):
        from repro.cli import EXIT_UNAVAILABLE

        code = self._code(
            ["query", "http://127.0.0.1:1", "g=F", "--timeout", "2"]
        )
        assert code == EXIT_UNAVAILABLE

    def test_hung_server_times_out_as_unavailable(self):
        """A socket that accepts the connection but never answers must
        map --timeout onto the same exit code as connection-refused —
        the caller's remedy (retry / check the server) is identical."""
        import socket

        from repro.cli import EXIT_UNAVAILABLE

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)  # connections complete; nothing answers
            host, port = listener.getsockname()
            code = self._code(
                [
                    "query",
                    f"http://{host}:{port}",
                    "g=F",
                    "--timeout",
                    "0.5",
                ]
            )
            assert code == EXIT_UNAVAILABLE
        finally:
            listener.close()

    def test_serve_scale_out_flags_validated(self, label_path):
        from repro.cli import EXIT_USAGE

        assert (
            self._code(["serve", str(label_path), "--workers", "0"])
            == EXIT_USAGE
        )
        assert (
            self._code(
                ["serve", str(label_path), "--cache-entries", "-1"]
            )
            == EXIT_USAGE
        )

    def test_codes_are_distinct(self):
        from repro import cli

        codes = [
            cli.EXIT_USAGE,
            cli.EXIT_MISSING_FILE,
            cli.EXIT_MALFORMED,
            cli.EXIT_MISMATCH,
            cli.EXIT_UNAVAILABLE,
            cli.EXIT_REMOTE,
        ]
        assert len(set(codes)) == len(codes)
        assert all(code not in (0, 1) for code in codes)


class TestEstimateJsonFlag:
    def test_single_pattern_json(self, label_path, capsys):
        assert (
            main(["estimate", str(label_path), "gender=Female", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"estimates", "exact"}
        assert len(payload["estimates"]) == 1
        assert isinstance(payload["exact"], bool)

    def test_workload_json(self, label_path, tmp_path, capsys):
        workload = tmp_path / "wl.json"
        workload.write_text(
            json.dumps([{"gender": "Female"}, {"gender": "Male"}])
        )
        assert (
            main(
                [
                    "estimate",
                    str(label_path),
                    "--workload",
                    str(workload),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"estimates"}
        assert len(payload["estimates"]) == 2

    def test_json_output_matches_plain(self, label_path, capsys):
        main(["estimate", str(label_path), "gender=Female", "--json"])
        as_json = json.loads(capsys.readouterr().out)["estimates"][0]
        main(["estimate", str(label_path), "gender=Female"])
        plain = float(capsys.readouterr().out.split()[0])
        assert as_json == pytest.approx(plain, abs=0.05)


class TestServeAndQuery:
    @pytest.fixture
    def service(self, label_path):
        """A live served label, built exactly as `repro serve` builds it."""
        from repro.cli import _service_from_args, build_parser

        args = build_parser().parse_args(
            ["serve", str(label_path), "--port", "0"]
        )
        service = _service_from_args(args)
        service.start()
        yield service
        service.stop()

    def test_serve_publishes_under_file_stem(self, service):
        assert service.store.names() == ["label"]
        assert service.store.get("label").version == 1

    def test_serve_scale_out_flags_build_workers_and_cache(
        self, label_path, capsys
    ):
        from repro.cli import _service_from_args, build_parser

        args = build_parser().parse_args(
            [
                "serve",
                str(label_path),
                "--port",
                "0",
                "--workers",
                "4",
                "--cache-entries",
                "64",
            ]
        )
        service = _service_from_args(args)
        try:
            assert service.workers.n_workers == 4
            assert service.cache is not None
            assert service.cache.max_entries == 64
        finally:
            service.stop()

    def test_serve_rejects_duplicate_stems(self, label_path):
        from repro.cli import _service_from_args, build_parser

        args = build_parser().parse_args(
            ["serve", str(label_path), str(label_path)]
        )
        with pytest.raises(SystemExit, match="share the served name"):
            _service_from_args(args)

    def test_query_list(self, service, capsys):
        assert main(["query", service.url, "--list"]) == 0
        out = capsys.readouterr().out
        assert "label" in out and "v1" in out

    def test_query_single_pattern_defaults_to_only_label(
        self, service, label_path, capsys
    ):
        assert main(["query", service.url, "gender=Female"]) == 0
        served = capsys.readouterr().out.strip()
        main(["estimate", str(label_path), "gender=Female"])
        local = capsys.readouterr().out.strip().split(" ")[0]
        assert served == local

    def test_query_json_carries_version(self, service, capsys):
        assert (
            main(["query", service.url, "gender=Female", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"] == "label"
        assert payload["version"] == 1
        assert len(payload["estimates"]) == 1

    def test_query_workload_batches(self, service, tmp_path, capsys):
        workload = tmp_path / "wl.json"
        workload.write_text(
            json.dumps([{"gender": "Female"}, {"gender": "Male"}])
        )
        assert (
            main(["query", service.url, "--workload", str(workload)]) == 0
        )
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_query_server_error_exit_code(self, service):
        from repro.cli import EXIT_REMOTE

        with pytest.raises(SystemExit) as info:
            main(["query", service.url, "g=F", "--label", "nope"])
        assert info.value.code == EXIT_REMOTE

    def test_query_explicit_label_flag(self, service, capsys):
        assert (
            main(["query", service.url, "gender=Male", "--label", "label"])
            == 0
        )
        assert capsys.readouterr().out.strip()


class TestChunkedMalformedCsvExitCode:
    def test_chunked_fit_on_malformed_csv_exits_malformed(self, tmp_path):
        from repro.cli import EXIT_MALFORMED

        bad = tmp_path / "bad.csv"
        bad.write_text("a,a\n1,2\n")  # duplicate header
        with pytest.raises(SystemExit) as info:
            main(["label", str(bad), "--chunk-rows", "1"])
        assert info.value.code == EXIT_MALFORMED


class TestSearchStrategyFlags:
    """CLI smoke for the unified search engine's new strategies."""

    def test_beam_algorithm_smoke(self, csv_path, tmp_path):
        out = tmp_path / "beam.json"
        code = main(
            ["label", str(csv_path), "--bound", "5", "--algorithm",
             "beam", "-o", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["attributes"] == ["age group", "marital status"]

    def test_beam_width_flag(self, csv_path, capsys):
        code = main(
            ["label", str(csv_path), "--bound", "5", "--algorithm",
             "beam", "--beam-width", "2"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["total"] == 18

    def test_anytime_with_time_limit_smoke(self, csv_path, capsys):
        code = main(
            ["label", str(csv_path), "--bound", "5", "--algorithm",
             "anytime", "--time-limit", "5"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["attributes"] == [
            "age group",
            "marital status",
        ]

    def test_anytime_tiny_budget_still_emits_a_label(self, csv_path, capsys):
        code = main(
            ["label", str(csv_path), "--bound", "5", "--algorithm",
             "anytime", "--time-limit", "1e-9"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "pc" in json.loads(captured.out)
        assert "budget hit" in captured.err

    def test_exact_strategy_timeout_exit_code(self, csv_path):
        from repro.cli import EXIT_TIMEOUT

        with pytest.raises(SystemExit) as info:
            main(
                ["label", str(csv_path), "--bound", "5", "--algorithm",
                 "naive", "--time-limit", "1e-9"]
            )
        assert info.value.code == EXIT_TIMEOUT

    def test_invalid_beam_width_rejected(self, csv_path):
        from repro.cli import EXIT_USAGE

        with pytest.raises(SystemExit) as info:
            main(
                ["label", str(csv_path), "--algorithm", "beam",
                 "--beam-width", "0"]
            )
        assert info.value.code == EXIT_USAGE

    def test_invalid_time_limit_rejected(self, csv_path):
        from repro.cli import EXIT_USAGE

        with pytest.raises(SystemExit) as info:
            main(["label", str(csv_path), "--time-limit", "0"])
        assert info.value.code == EXIT_USAGE

    def test_beam_width_on_wrong_strategy_is_registry_error(self, csv_path):
        from repro import RegistryError

        with pytest.raises(RegistryError, match="does not accept"):
            main(
                ["label", str(csv_path), "--algorithm", "naive",
                 "--beam-width", "3"]
            )


class TestPackCommand:
    def test_pack_writes_deployable_directory(self, csv_path, tmp_path, capsys):
        out = tmp_path / "pack"
        code = main(
            ["pack", str(csv_path), "--bound", "5", "-o", str(out)]
        )
        assert code == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == ["label-data.json", "manifest.json", "shard-0000.bin"]
        err = capsys.readouterr().err
        assert "repro serve --artifact-dir" in err

    def test_pack_sharded(self, csv_path, tmp_path):
        out = tmp_path / "pack"
        code = main(
            [
                "pack",
                str(csv_path),
                "--bound",
                "5",
                "--shards",
                "3",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        from repro import verify_pack

        assert verify_pack(out)["shards"] == 3

    def test_pack_custom_label_name(self, csv_path, tmp_path):
        out = tmp_path / "pack"
        main(
            [
                "pack",
                str(csv_path),
                "--bound",
                "5",
                "--name",
                "compas",
                "-o",
                str(out),
            ]
        )
        from repro import open_pack

        assert open_pack(out).label_names == ["compas"]

    def test_pack_missing_csv_exit_code(self, tmp_path):
        from repro.cli import EXIT_MISSING_FILE

        with pytest.raises(SystemExit) as info:
            main(
                ["pack", str(tmp_path / "nope.csv"), "--bound", "5",
                 "-o", str(tmp_path / "pack")]
            )
        assert info.value.code == EXIT_MISSING_FILE


class TestServeFromPack:
    @pytest.fixture
    def pack_dir(self, csv_path, tmp_path):
        out = tmp_path / "pack"
        assert (
            main(["pack", str(csv_path), "--bound", "5", "-o", str(out)])
            == 0
        )
        return out

    @pytest.fixture
    def service(self, pack_dir):
        """A live warm-started service, as `serve --artifact-dir` builds it."""
        from repro.cli import _service_from_args, build_parser

        args = build_parser().parse_args(
            ["serve", "--artifact-dir", str(pack_dir), "--port", "0"]
        )
        service = _service_from_args(args)
        service.start()
        yield service
        service.stop()

    def test_serve_publishes_packed_label(self, service):
        assert service.store.names() == ["data"]
        snap = service.store.get("data")
        assert snap.pack is not None
        # Warm start is label-only: no shard payload was read to serve.
        assert snap.pack.stats.shard_loads == []

    def test_query_round_trip(self, service, capsys):
        assert main(["query", service.url, "gender=Female"]) == 0
        assert float(capsys.readouterr().out.strip()) > 0

    def test_artifact_dir_and_labels_conflict(self, pack_dir, tmp_path):
        from repro.cli import EXIT_USAGE, _service_from_args, build_parser

        label = tmp_path / "label.json"
        label.write_text("{}")
        args = build_parser().parse_args(
            ["serve", str(label), "--artifact-dir", str(pack_dir)]
        )
        with pytest.raises(SystemExit) as info:
            _service_from_args(args)
        assert info.value.code == EXIT_USAGE

    def test_serve_needs_some_source(self):
        from repro.cli import EXIT_USAGE, _service_from_args, build_parser

        args = build_parser().parse_args(["serve"])
        with pytest.raises(SystemExit) as info:
            _service_from_args(args)
        assert info.value.code == EXIT_USAGE

    def test_missing_pack_dir_exit_code(self, tmp_path):
        from repro.cli import (
            EXIT_MISSING_FILE,
            _service_from_args,
            build_parser,
        )

        args = build_parser().parse_args(
            ["serve", "--artifact-dir", str(tmp_path / "nope")]
        )
        with pytest.raises(SystemExit) as info:
            _service_from_args(args)
        assert info.value.code == EXIT_MISSING_FILE

    def test_corrupt_pack_exit_code(self, pack_dir):
        from repro.cli import EXIT_MALFORMED, _service_from_args, build_parser

        (pack_dir / "manifest.json").write_text("{broken")
        args = build_parser().parse_args(
            ["serve", "--artifact-dir", str(pack_dir)]
        )
        with pytest.raises(SystemExit) as info:
            _service_from_args(args)
        assert info.value.code == EXIT_MALFORMED
