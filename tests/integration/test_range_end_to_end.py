"""End-to-end: mixed equality/range workloads across every surface.

The acceptance scenario of the native range predicates: one mixed
workload whose patterns bind only the labeled attributes (so the label
estimate is *exact* — ``Est(p) = c_D(p|_S)`` when ``Attr(p) ⊆ S``) is
pushed through

* :meth:`LabelingSession.estimate_many` (the batched evaluation stack),
* a sharded counter with live pool workers (the parallel kernels), and
* the serve HTTP endpoint (operator-object JSON over the wire),

and every surface must return the brute-force row-loop count, byte for
byte — not approximately.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import (
    LabelingSession,
    Pattern,
    PatternCounter,
    ShardedPatternCounter,
    build_label,
)
from repro.core.pattern import OPS, Predicate
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def data():
    return load_dataset("compas", n_rows=800, seed=3)


@pytest.fixture(scope="module")
def subset(data):
    return tuple(data.attribute_names[:2])


@pytest.fixture(scope="module")
def workload(data, subset) -> list[Pattern]:
    """Every operator, alone and mixed, over the labeled attributes."""
    a1, a2 = subset
    values1 = sorted(data.schema[a1].categories)
    values2 = sorted(data.schema[a2].categories)
    patterns = []
    for position, op in enumerate(OPS):
        value1 = values1[position % len(values1)]
        value2 = values2[position % len(values2)]
        binding1 = value1 if op == "=" else Predicate(op, value1)
        patterns.append(Pattern({a1: binding1}))
        patterns.append(Pattern({a1: binding1, a2: value2}))
        patterns.append(
            Pattern({a1: binding1, a2: Predicate(OPS[-1 - position % len(OPS)], value2)})
        )
    assert any(p.has_ranges for p in patterns)
    assert any(not p.has_ranges for p in patterns)
    return patterns


@pytest.fixture(scope="module")
def brute(data, workload) -> list[int]:
    return [
        sum(p.matches_row(data.row(i)) for i in range(data.n_rows))
        for p in workload
    ]


@pytest.fixture(scope="module")
def session(data, subset) -> LabelingSession:
    return LabelingSession(build_label(PatternCounter(data), subset))


def test_single_counter_matches_brute_force(data, workload, brute):
    counter = PatternCounter(data)
    assert [counter.count(p) for p in workload] == brute
    assert list(counter.count_many(workload)) == brute


def test_sharded_parallel_path_matches_brute_force(data, workload, brute):
    with ShardedPatternCounter.from_dataset(
        data, 3, parallel=True, max_workers=2
    ) as sharded:
        assert list(sharded.count_many(workload)) == brute
        # Repeat batch rides the merged key tables and cached cumsums.
        assert list(sharded.count_many(workload)) == brute


def test_session_estimate_many_is_exact_on_labeled_attributes(
    session, workload, brute
):
    # Attr(p) ⊆ S for every pattern, so the estimate IS the count.
    assert session.estimate_many(workload) == [float(c) for c in brute]
    assert [session.estimate(p) for p in workload] == [
        float(c) for c in brute
    ]


def test_serve_http_endpoint_matches_brute_force(session, workload, brute):
    with session.serve(name="compas") as service:
        body = json.dumps(
            {"patterns": [p.to_spec() for p in workload]}
        ).encode()
        request = urllib.request.Request(
            service.url + "/labels/compas/estimate",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            payload = json.loads(response.read().decode())
    assert payload["estimates"] == [float(c) for c in brute]
