"""Failure-injection tests: corrupted inputs fail loudly and precisely.

A production metadata library must reject malformed labels, inconsistent
CSVs and impossible configurations with clear errors — never estimate
from garbage silently.
"""

import json

import pytest

from repro import (
    Dataset,
    Label,
    LabelEstimator,
    Pattern,
    PatternCounter,
    build_label,
)
from repro.dataset.schema import Column, Schema


class TestCorruptedLabelJson:
    def make_payload(self, figure2) -> dict:
        return build_label(figure2, ["gender", "race"]).to_dict()

    def test_missing_field_raises_key_error(self, figure2):
        payload = self.make_payload(figure2)
        del payload["total"]
        with pytest.raises(KeyError):
            Label.from_dict(payload)

    def test_negative_pc_count_rejected(self, figure2):
        payload = self.make_payload(figure2)
        payload["pc"][0]["count"] = -5
        with pytest.raises(ValueError, match="positive"):
            Label.from_dict(payload)

    def test_wrong_arity_pc_rejected(self, figure2):
        payload = self.make_payload(figure2)
        payload["pc"][0]["values"] = ["only-one"]
        with pytest.raises(ValueError, match="arity"):
            Label.from_dict(payload)

    def test_attribute_outside_order_rejected(self, figure2):
        payload = self.make_payload(figure2)
        payload["attributes"] = ["gender", "not-an-attribute"]
        with pytest.raises(ValueError, match="missing from"):
            Label.from_dict(payload)

    def test_invalid_json_text(self):
        with pytest.raises(json.JSONDecodeError):
            Label.from_json("{not json")


class TestEstimatorMisuse:
    def test_unknown_value_raises_key_error(self, figure2):
        estimator = LabelEstimator(build_label(figure2, ["gender"]))
        with pytest.raises(KeyError):
            estimator.estimate(Pattern({"race": "Martian"}))

    def test_unknown_attribute_raises_key_error(self, figure2):
        estimator = LabelEstimator(build_label(figure2, ["gender"]))
        with pytest.raises(KeyError):
            estimator.estimate(Pattern({"zzz": "x"}))


class TestDatasetMisuse:
    def test_count_on_unknown_attribute(self, figure2_counter):
        with pytest.raises(KeyError, match="no attribute"):
            figure2_counter.count(Pattern({"height": "tall"}))

    def test_select_unknown_attribute(self, figure2):
        with pytest.raises(KeyError):
            figure2.select(["nope"])

    def test_joint_counts_empty_attribute_list(self, figure2):
        with pytest.raises(ValueError, match="non-empty"):
            figure2.joint_counts([])

    def test_empty_relation_is_usable(self):
        schema = Schema([Column("a", ("x", "y")), Column("b", ("1",))])
        import numpy as np

        empty = Dataset(schema, np.empty((0, 2), dtype=np.int32))
        counter = PatternCounter(empty)
        assert counter.count(Pattern({"a": "x"})) == 0
        assert counter.label_size(("a", "b")) == 0
        combos, counts = counter.joint_table(("a", "b"))
        assert combos.shape == (0, 2)
        assert counts.size == 0

    def test_single_row_relation(self):
        data = Dataset.from_columns({"a": ["x"], "b": ["1"]})
        from repro import find_optimal_label

        result = find_optimal_label(data, bound=5)
        assert result.objective_value == 0.0
        assert result.label.size == 1

    def test_all_identical_rows(self):
        data = Dataset.from_columns(
            {"a": ["x"] * 50, "b": ["1"] * 50, "c": ["p"] * 50}
        )
        from repro import find_optimal_label

        result = find_optimal_label(data, bound=5)
        assert result.objective_value == 0.0
