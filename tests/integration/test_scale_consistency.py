"""Cross-scale consistency: results stay qualitatively stable as data grows.

These guard the claim that the CI-scale benchmarks are representative of
the paper-scale runs: the optimal subsets and winner orderings should not
flip wildly between a few thousand rows and several times that.
"""

import pytest

from repro import PatternCounter, full_pattern_set, top_down_search
from repro.datasets import load_dataset


class TestSubsetStability:
    def test_bluenile_finishing_cluster_stable(self):
        """The finishing-grade cluster is optimal at every scale."""
        chosen = []
        for n_rows in (3_000, 12_000):
            data = load_dataset("bluenile", n_rows=n_rows, seed=0)
            result = top_down_search(data, 50)
            chosen.append(set(result.attributes))
        for attrs in chosen:
            assert {"cut", "polish"} <= attrs

    def test_compas_score_cluster_stable(self):
        for n_rows in (3_000, 10_000):
            data = load_dataset("compas", n_rows=n_rows, seed=0)
            result = top_down_search(data, 50)
            assert {
                "RecSupervisionLevel",
                "RecSupervisionLevelText",
            } <= set(result.attributes)


class TestErrorScaling:
    def test_relative_error_stable_under_scale(self):
        """Max error as a fraction of |D| is scale-invariant-ish for a
        fixed subset (counts and estimates both scale linearly)."""
        fractions = []
        for n_rows in (4_000, 16_000):
            data = load_dataset("bluenile", n_rows=n_rows, seed=0)
            counter = PatternCounter(data)
            from repro import evaluate_label

            summary = evaluate_label(counter, ("cut", "polish"))
            fractions.append(summary.max_abs / n_rows)
        small, large = fractions
        assert small == pytest.approx(large, rel=0.5)

    def test_label_size_saturates(self):
        """|P_S| approaches the domain product and stops growing."""
        sizes = []
        for n_rows in (2_000, 8_000, 16_000):
            data = load_dataset("bluenile", n_rows=n_rows, seed=0)
            counter = PatternCounter(data)
            sizes.append(counter.label_size(("cut", "polish", "symmetry")))
        assert sizes == sorted(sizes)
        assert sizes[-1] <= 4 * 3 * 3
