"""End-to-end: out-of-core CSV → chunked ingestion → sharded labeling.

The acceptance scenario of the sharded counting engine: a CSV larger
than a single chunk is streamed through
:func:`~repro.dataset.csvio.read_csv_chunks`, fed to
:class:`~repro.api.session.LabelingSession` as a chunk stream (each
chunk a shard), and the resulting label must be byte-identical to the
label fitted over the monolithically loaded file.
"""

import json

import numpy as np
import pytest

from repro import (
    LabelingSession,
    Pattern,
    PatternCounter,
    read_csv,
    read_csv_chunks,
    write_csv,
)
from repro.core.workload import random_pattern_workload
from repro.datasets import load_dataset


N_ROWS = 2600
CHUNK_ROWS = 500  # 6 chunks: the file is larger than a single chunk


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("chunked") / "big.csv"
    write_csv(load_dataset("compas", n_rows=N_ROWS, seed=7), path)
    return path


@pytest.fixture(scope="module")
def monolithic_session(csv_path):
    return LabelingSession.fit(read_csv(csv_path), bound=40)


def test_file_spans_multiple_chunks(csv_path):
    chunks = list(read_csv_chunks(csv_path, chunk_rows=CHUNK_ROWS))
    assert len(chunks) == -(-N_ROWS // CHUNK_ROWS) > 1
    assert sum(c.n_rows for c in chunks) == N_ROWS
    assert len({c.schema for c in chunks}) == 1


def test_chunk_stream_label_matches_monolithic(
    csv_path, monolithic_session
):
    session = LabelingSession.fit(
        read_csv_chunks(csv_path, chunk_rows=CHUNK_ROWS), bound=40
    )
    assert session.artifact == monolithic_session.artifact
    assert (
        session.artifact.to_json() == monolithic_session.artifact.to_json()
    )


def test_explicit_shards_knob(csv_path, monolithic_session):
    session = LabelingSession.fit(
        read_csv_chunks(csv_path, chunk_rows=CHUNK_ROWS),
        bound=40,
        shards=3,
    )
    assert session.artifact == monolithic_session.artifact


def test_sharded_session_serves_identical_estimates(
    csv_path, monolithic_session
):
    data = read_csv(csv_path)
    rng = np.random.default_rng(11)
    workload = random_pattern_workload(
        PatternCounter(data), 60, rng, min_arity=1, max_arity=3
    )
    patterns = [workload.pattern(i) for i in range(len(workload))]
    sharded = LabelingSession.fit(
        read_csv_chunks(csv_path, chunk_rows=CHUNK_ROWS), bound=40
    )
    np.testing.assert_allclose(
        sharded.estimate_many(patterns),
        monolithic_session.estimate_many(patterns),
        rtol=0,
        atol=0,
    )


def test_save_load_roundtrip_from_chunked_fit(csv_path, tmp_path):
    session = LabelingSession.fit(
        read_csv_chunks(csv_path, chunk_rows=CHUNK_ROWS), bound=40
    )
    path = session.save(tmp_path / "chunked-label.json")
    loaded = LabelingSession.load(path)
    assert loaded.artifact == session.artifact
    data = read_csv(csv_path)
    pattern = Pattern({data.attribute_names[0]: data.row(0)[data.attribute_names[0]]})
    assert loaded.estimate(pattern) == session.estimate(pattern)


def test_cli_chunked_label_matches_monolithic(csv_path, tmp_path, capsys):
    from repro.cli import main

    sharded_out = tmp_path / "sharded.json"
    mono_out = tmp_path / "mono.json"
    assert (
        main(
            [
                "label",
                str(csv_path),
                "--bound",
                "40",
                "--chunk-rows",
                str(CHUNK_ROWS),
                "--shards",
                "4",
                "-o",
                str(sharded_out),
            ]
        )
        == 0
    )
    assert (
        main(["label", str(csv_path), "--bound", "40", "-o", str(mono_out)])
        == 0
    )
    assert json.loads(sharded_out.read_text()) == json.loads(
        mono_out.read_text()
    )
