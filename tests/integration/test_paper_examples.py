"""End-to-end checks of every worked example in the paper's body.

Each test names the example it reproduces; together they certify that the
implementation computes exactly the numbers printed in Sections II–III.
"""

import pytest

from repro import (
    LabelEstimator,
    Pattern,
    PatternCounter,
    build_label,
    find_optimal_label,
    naive_search,
)
from repro.dataset.table import Dataset


class TestSectionII:
    def test_example_2_2_pattern_and_attr(self, figure2):
        pattern = Pattern(
            {"age group": "under 20", "marital status": "single"}
        )
        assert set(pattern.attributes) == {"age group", "marital status"}

    def test_example_2_4_count_is_6(self, figure2_counter):
        pattern = Pattern(
            {"age group": "under 20", "marital status": "single"}
        )
        assert figure2_counter.count(pattern) == 6

    def test_examples_2_5_to_2_8_binary_cube(self):
        """The n-attribute binary cube with A1 = A2 (n = 4 here)."""
        n = 4
        rows = []
        for bits in range(2 ** (n - 1)):  # free bits: A2..An
            b = [(bits >> i) & 1 for i in range(n - 1)]
            rows.append(tuple(str(v) for v in ([b[0]] + b)))  # A1 = A2
            rows.append(tuple(str(v) for v in ([b[0]] + b)))  # doubled
        data = Dataset.from_rows(
            [f"A{i + 1}" for i in range(n)], rows
        )
        counter = PatternCounter(data)
        target = Pattern({"A1": "0", "A2": "0", "A3": "0"})
        true_count = counter.count(target)
        # Independence estimate (Example 2.7): |D| / 8 — off by 2x.
        independence = LabelEstimator(build_label(counter, []))
        assert independence.estimate(target) == pytest.approx(
            data.n_rows / 8
        )
        assert true_count == data.n_rows / 4
        # With the {A1, A2} joint (Example 2.8): exact.
        informed = LabelEstimator(build_label(counter, ["A1", "A2"]))
        assert informed.estimate(target) == true_count

    def test_example_2_10_both_labels(self, figure2):
        age_marital = build_label(figure2, ["age group", "marital status"])
        assert dict(age_marital.pc) == {
            ("under 20", "single"): 6,
            ("20-39", "married"): 6,
            ("20-39", "divorced"): 6,
        }
        gender_age = build_label(figure2, ["gender", "age group"])
        assert dict(gender_age.pc) == {
            ("Female", "under 20"): 3,
            ("Male", "under 20"): 3,
            ("Female", "20-39"): 6,
            ("Male", "20-39"): 6,
        }
        assert age_marital.vc == gender_age.vc

    def test_example_2_12_estimates(self, figure2):
        target = Pattern(
            {
                "gender": "Female",
                "age group": "20-39",
                "marital status": "married",
            }
        )
        l1 = build_label(figure2, ["age group", "marital status"])
        l2 = build_label(figure2, ["gender", "age group"])
        assert LabelEstimator(l1).estimate(target) == 3.0
        assert LabelEstimator(l2).estimate(target) == 2.0

    def test_example_2_14_errors(self, figure2, figure2_counter):
        target = Pattern(
            {
                "gender": "Female",
                "age group": "20-39",
                "marital status": "married",
            }
        )
        true_count = figure2_counter.count(target)
        l1 = LabelEstimator(
            build_label(figure2, ["age group", "marital status"])
        )
        l2 = LabelEstimator(build_label(figure2, ["gender", "age group"]))
        assert abs(true_count - l1.estimate(target)) == 0
        assert abs(true_count - l2.estimate(target)) == 1


class TestSectionIII:
    def test_example_3_7_run(self, figure2):
        """Bound 5 on the Figure 2 data: cands are {g,a} and {a,m}; the
        returned label is the zero-error {age, marital} one."""
        result = naive_search(figure2, bound=5)
        assert set(result.candidates) == {
            ("gender", "age group"),
            ("age group", "marital status"),
        }
        assert result.attributes == ("age group", "marital status")
        assert result.objective_value == 0.0

    def test_proposition_3_2_in_practice(self, compas_small):
        """Supersets' labels are at least as accurate on the evaluation
        data (the Section IV-E claim, spot-checked on a chain)."""
        from repro import evaluate_label

        counter = PatternCounter(compas_small)
        chain = [
            ("DecileScore",),
            ("DecileScore", "ScoreText"),
            ("DecileScore", "ScoreText", "RecSupervisionLevel"),
        ]
        errors = [
            evaluate_label(counter, subset).max_abs for subset in chain
        ]
        assert errors[1] <= errors[0] + 1e-9
        assert errors[2] <= errors[1] + 1e-9


class TestDeploymentFlow:
    def test_publish_and_consume_label(self, tmp_path, compas_small):
        """The intended deployment: search → serialize → ship → estimate
        without the data."""
        result = find_optimal_label(compas_small, bound=30)
        path = tmp_path / "label.json"
        path.write_text(result.label.to_json())

        from repro import Label

        shipped = Label.from_json(path.read_text())
        estimator = LabelEstimator(shipped)
        counter = PatternCounter(compas_small)
        pattern = Pattern({"Sex": "Female", "Race": "Hispanic"})
        estimate = estimator.estimate(pattern)
        true_count = counter.count(pattern)
        assert abs(estimate - true_count) <= 0.15 * compas_small.n_rows

    def test_csv_to_label_pipeline(self, tmp_path, figure2):
        """CSV in, optimal label out."""
        from repro import read_csv, write_csv

        path = tmp_path / "compas.csv"
        write_csv(figure2, path)
        loaded = read_csv(path)
        result = find_optimal_label(loaded, bound=5)
        assert result.objective_value == 0.0
