"""The repro-label/4 envelope: shapes, errors, and back-compat."""

from __future__ import annotations

import json

import pytest

from repro import LabelEstimator, MultiLabelEstimator, Pattern, build_label
from repro.api import (
    ARTIFACT_FORMAT,
    ArtifactError,
    MultiLabelBundle,
    estimator_from_artifact,
    from_artifact,
    to_artifact,
)
from repro.core.flexlabel import FlexibleEstimator, FlexibleLabel
from repro.core.label import Label
from repro.core.pattern import Predicate


@pytest.fixture
def label(figure2_counter) -> Label:
    return build_label(figure2_counter, ["gender", "race"])


@pytest.fixture
def flexible(figure2, figure2_counter) -> FlexibleLabel:
    pattern = Pattern({"gender": "Female", "race": "Hispanic"})
    return FlexibleLabel(
        pc={pattern: figure2_counter.count(pattern)},
        vc={
            col.name: figure2_counter.value_counts(col.name)
            for col in figure2.schema
        },
        total=figure2.n_rows,
        attribute_order=figure2.attribute_names,
    )


class TestEnvelopeShape:
    def test_label_envelope(self, label):
        payload = to_artifact(label)
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["kind"] == "label"
        assert payload["label"] == label.to_dict()

    def test_flexible_envelope(self, flexible):
        payload = to_artifact(flexible)
        assert payload["kind"] == "flexible"
        entry = payload["flexible"]["pc"][0]
        assert entry["bindings"] == {"gender": "Female", "race": "Hispanic"}

    def test_multi_envelope(self, label):
        payload = to_artifact(MultiLabelBundle((label,), reduce="max"))
        assert payload["kind"] == "multi"
        assert payload["multi"]["reduce"] == "max"
        assert len(payload["multi"]["labels"]) == 1

    def test_sequence_of_labels_becomes_bundle(self, label):
        assert to_artifact([label, label])["kind"] == "multi"

    def test_envelope_is_json_serializable(self, label, flexible):
        for obj in (label, flexible, MultiLabelBundle((label,))):
            json.dumps(to_artifact(obj))

    def test_estimators_serialize_as_their_labels(self, label, flexible):
        assert to_artifact(LabelEstimator(label)) == to_artifact(label)
        assert to_artifact(FlexibleEstimator(flexible)) == to_artifact(
            flexible
        )
        multi = MultiLabelEstimator([label], reduce="min")
        payload = to_artifact(multi)
        assert payload["kind"] == "multi"
        assert payload["multi"]["reduce"] == "min"


class TestParsing:
    def test_round_trip_kinds(self, label, flexible):
        assert isinstance(from_artifact(to_artifact(label)), Label)
        assert isinstance(from_artifact(to_artifact(flexible)), FlexibleLabel)
        bundle = from_artifact(to_artifact(MultiLabelBundle((label,))))
        assert isinstance(bundle, MultiLabelBundle)

    def test_accepts_json_text(self, label):
        parsed = from_artifact(json.dumps(to_artifact(label)))
        assert isinstance(parsed, Label)

    def test_legacy_bare_label(self, label):
        parsed = from_artifact(label.to_json())
        assert parsed == label

    def test_unknown_kind_names_supported_kinds(self):
        with pytest.raises(ArtifactError, match="'label', 'flexible'"):
            from_artifact({"format": ARTIFACT_FORMAT, "kind": "sketch"})

    def test_unknown_format_version_lists_supported(self):
        with pytest.raises(
            ArtifactError, match=r"repro-label/2.*repro-label/3"
        ):
            from_artifact({"format": "repro-label/99", "kind": "label"})

    def test_v2_envelope_still_loads(self, label):
        """A pre-range envelope (format repro-label/2) parses unchanged."""
        payload = to_artifact(label)
        assert payload["format"] == "repro-label/4"
        legacy = dict(payload, format="repro-label/2")
        parsed = from_artifact(json.dumps(legacy))
        assert parsed == label

    def test_v3_stringified_vc_still_loads(self, label):
        """The pre-v4 VC shape — an object keyed by str(value) — parses."""
        payload = to_artifact(label)
        body = payload["label"]
        body["vc"] = {
            attribute: {str(value): count for value, count in pairs}
            for attribute, pairs in body["vc"].items()
        }
        parsed = from_artifact(json.dumps(dict(payload, format="repro-label/3")))
        assert parsed.total == label.total
        assert set(parsed.vc) == set(label.vc)

    def test_not_json(self):
        with pytest.raises(ArtifactError, match="not valid JSON"):
            from_artifact("{nope")

    def test_not_an_object(self):
        with pytest.raises(ArtifactError, match="JSON object"):
            from_artifact("[1, 2]")

    def test_missing_payload_is_malformed(self):
        with pytest.raises(ArtifactError, match="malformed"):
            from_artifact({"format": ARTIFACT_FORMAT, "kind": "label"})

    def test_bare_object_without_label_keys(self):
        with pytest.raises(ArtifactError, match="legacy bare label"):
            from_artifact({"something": "else"})


class TestRangeBindings:
    """Range predicates in flexible labels survive the wire format."""

    @pytest.fixture
    def ranged(self, figure2, figure2_counter) -> FlexibleLabel:
        pattern = Pattern(
            {"gender": "Female", "race": Predicate(">=", "Hispanic")}
        )
        return FlexibleLabel(
            pc={pattern: figure2_counter.count(pattern)},
            vc={
                col.name: figure2_counter.value_counts(col.name)
                for col in figure2.schema
            },
            total=figure2.n_rows,
            attribute_order=figure2.attribute_names,
        )

    def test_range_bindings_serialize_as_operator_objects(self, ranged):
        payload = to_artifact(ranged)
        assert payload["format"] == "repro-label/4"
        entry = payload["flexible"]["pc"][0]
        assert entry["bindings"] == {
            "gender": "Female",
            "race": {">=": "Hispanic"},
        }
        json.dumps(payload)  # operator objects are plain JSON

    def test_range_round_trip(self, ranged):
        parsed = from_artifact(json.dumps(to_artifact(ranged)))
        assert isinstance(parsed, FlexibleLabel)
        assert parsed == ranged
        (pattern,) = parsed.pc
        assert pattern["race"] == Predicate(">=", "Hispanic")


class TestEstimatorFromArtifact:
    def test_mapping(self, label, flexible):
        assert isinstance(estimator_from_artifact(label), LabelEstimator)
        assert isinstance(
            estimator_from_artifact(flexible), FlexibleEstimator
        )
        assert isinstance(
            estimator_from_artifact(MultiLabelBundle((label,))),
            MultiLabelEstimator,
        )

    def test_rejects_other_types(self):
        with pytest.raises(ArtifactError, match="no estimator"):
            estimator_from_artifact("nope")

    def test_empty_bundle_rejected(self):
        with pytest.raises(ArtifactError, match="at least one label"):
            MultiLabelBundle(())
