"""Registry conformance: every backend resolves by name and agrees with
itself between the per-pattern and vectorized estimation paths."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Dataset, Pattern, PatternCounter, build_label
from repro.api import (
    RegistryError,
    estimate_many,
    make_estimator,
    make_strategy,
    register_estimator,
    register_strategy,
    registered_estimators,
    registered_strategies,
)
from repro.baselines.base import CardinalityEstimator
from repro.core.flexlabel import FlexibleLabel
from repro.core.label import Label
from repro.core.patternsets import full_pattern_set
from repro.core.workload import random_pattern_workload

ALL_ESTIMATORS = (
    "label",
    "flexible",
    "multi_label",
    "independence",
    "sampling",
    "dephist",
    "postgres",
)

ALL_STRATEGIES = ("naive", "top_down", "greedy_flexible")


@pytest.fixture(scope="module")
def synthetic() -> Dataset:
    rng = np.random.default_rng(99)
    n = 200
    a = rng.choice(["x", "y", "z"], size=n)
    # b correlates with a so the label has something to capture.
    b = np.where(rng.random(n) < 0.7, a, rng.choice(["x", "y", "z"], size=n))
    c = rng.choice(["p", "q"], size=n)
    return Dataset.from_columns(
        {"a": list(a), "b": list(b), "c": list(c)}
    )


class TestEstimatorRegistry:
    def test_all_seven_names_registered(self):
        assert set(ALL_ESTIMATORS) <= set(registered_estimators())

    @pytest.mark.parametrize("name", ALL_ESTIMATORS)
    def test_make_estimator_from_dataset(self, synthetic, name):
        estimator = make_estimator(name, synthetic, bound=10, seed=0)
        assert isinstance(estimator, CardinalityEstimator)
        value = estimator.estimate(Pattern({"a": "x"}))
        assert isinstance(value, float) and value >= 0.0

    @pytest.mark.parametrize("name", ALL_ESTIMATORS)
    def test_estimate_vs_estimate_many_agree(self, synthetic, name):
        """Conformance: per-pattern and workload paths agree to 1e-9.

        The workload path goes through ``estimate_codes`` for tabular
        backends, so this pins the vectorized kernels to the scalar
        estimation function.
        """
        counter = PatternCounter(synthetic)
        workload = full_pattern_set(counter)
        estimator = make_estimator(name, counter, bound=10, seed=0)
        many = estimate_many(estimator, workload)
        single = [
            estimator.estimate(workload.pattern(i))
            for i in range(len(workload))
        ]
        np.testing.assert_allclose(many, single, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("name", ALL_ESTIMATORS)
    def test_estimate_many_heterogeneous_workload(self, synthetic, name):
        counter = PatternCounter(synthetic)
        rng = np.random.default_rng(5)
        workload = random_pattern_workload(counter, 20, rng, min_arity=1)
        estimator = make_estimator(name, counter, bound=10, seed=0)
        many = estimate_many(estimator, workload)
        single = [
            estimator.estimate(workload.pattern(i))
            for i in range(len(workload))
        ]
        np.testing.assert_allclose(many, single, atol=1e-9, rtol=0)

    def test_dash_and_case_normalization(self, synthetic):
        estimator = make_estimator("Multi-Label", synthetic, bound=6)
        assert estimator.estimate(Pattern({"a": "x"})) >= 0.0

    def test_label_backend_accepts_artifact(self, synthetic):
        label = build_label(PatternCounter(synthetic), ["a", "b"])
        estimator = make_estimator("label", label)
        assert estimator.label is label

    def test_flexible_backend_accepts_artifact(self, synthetic):
        counter = PatternCounter(synthetic)
        flexible = FlexibleLabel(
            pc={Pattern({"a": "x"}): counter.count(Pattern({"a": "x"}))},
            vc={
                col.name: counter.value_counts(col.name)
                for col in synthetic.schema
            },
            total=synthetic.n_rows,
            attribute_order=synthetic.attribute_names,
        )
        estimator = make_estimator("flexible", flexible)
        assert estimator.label is flexible

    def test_unknown_name_lists_registered(self, synthetic):
        with pytest.raises(RegistryError, match="label"):
            make_estimator("no-such-backend", synthetic)

    def test_bad_params_raise_registry_error(self, synthetic):
        with pytest.raises(RegistryError, match="bad parameters"):
            make_estimator("label", synthetic, bogus_option=1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_estimator("label", lambda source: None)

    def test_custom_registration_round_trip(self, synthetic):
        class Constant:
            def estimate(self, pattern) -> float:
                return 42.0

        register_estimator(
            "constant-test", lambda source: Constant(), replace=True
        )
        estimator = make_estimator("constant_test", synthetic)
        assert estimator.estimate(Pattern({"a": "x"})) == 42.0

    def test_needs_data_backend_rejects_artifacts(self, synthetic):
        label = build_label(PatternCounter(synthetic), ["a"])
        with pytest.raises(RegistryError, match="must be built from a dataset"):
            make_estimator("sampling", label)

    def test_label_factory_uses_strategy_registry(self, synthetic):
        estimator = make_estimator(
            "label", synthetic, bound=10, algorithm="naive"
        )
        assert estimator.label.size <= 10
        with pytest.raises(RegistryError, match="'flexible' artifact"):
            make_estimator(
                "label", synthetic, bound=10, algorithm="greedy_flexible"
            )


class TestScoreEstimators:
    def test_by_name_and_prebuilt_agree(self, synthetic):
        from repro.experiments.harness import score_estimators

        by_name = score_estimators(
            synthetic, ["independence"], bound=10
        )
        prebuilt = score_estimators(
            synthetic,
            {"independence": make_estimator("independence", synthetic)},
            bound=10,
        )
        assert by_name.rows() == prebuilt.rows()

    def test_narrow_custom_factory_is_not_force_fed_options(self, synthetic):
        from repro.experiments.harness import score_estimators

        class Constant:
            def estimate(self, pattern) -> float:
                return 1.0

        # A factory without bound/seed parameters must still sweep.
        register_estimator(
            "narrow-test", lambda source: Constant(), replace=True
        )
        table = score_estimators(synthetic, ["narrow_test"], bound=10)
        assert table.column("estimator") == ["narrow_test"]


class TestStrategyRegistry:
    def test_all_three_strategies_registered(self):
        assert set(ALL_STRATEGIES) <= set(registered_strategies())

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_fit_produces_artifact_within_bound(self, synthetic, name):
        strategy = make_strategy(name)
        fitted = strategy.fit(synthetic, 8)
        assert isinstance(fitted.artifact, (Label, FlexibleLabel))
        assert fitted.artifact.size <= 8
        assert fitted.kind in ("label", "flexible")

    def test_config_is_validated_dataclass(self):
        strategy = make_strategy("naive", min_size=2, max_size=3)
        assert dataclasses.is_dataclass(strategy.config)
        assert strategy.config.max_size == 3

    def test_unknown_config_key_lists_valid_fields(self):
        with pytest.raises(RegistryError, match="prune_parents"):
            make_strategy("top_down", bogus=True)

    def test_unknown_strategy_name(self):
        with pytest.raises(RegistryError, match="top_down"):
            make_strategy("no-such-strategy")

    def test_legacy_top_down_spelling(self, synthetic):
        fitted = make_strategy("top-down").fit(synthetic, 8)
        assert fitted.search is not None
        assert fitted.summary is not None
        with pytest.raises(RegistryError, match="config_cls"):
            register_strategy(
                "bad", lambda *a: None, config_cls=int, replace=True
            )
