"""LabelingSession lifecycle: fit → estimate → evaluate → update → ship."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, LabelingSession, Pattern, PatternCounter, build_label
from repro.api import MultiLabelBundle, SessionError, dump_artifact
from repro.core.flexlabel import FlexibleLabel
from repro.core.label import Label
from repro.core.patternsets import full_pattern_set


@pytest.fixture
def workload(figure2_counter):
    return full_pattern_set(figure2_counter)


class TestFit:
    def test_default_strategy_is_top_down(self, figure2):
        session = LabelingSession.fit(figure2, 5)
        assert session.kind == "label"
        assert session.strategy == "top_down"
        assert session.result is not None
        assert session.size <= 5

    def test_greedy_flexible_strategy(self, figure2):
        session = LabelingSession.fit(figure2, 5, strategy="greedy_flexible")
        assert session.kind == "flexible"
        assert isinstance(session.artifact, FlexibleLabel)
        assert session.result is None
        assert session.size <= 5

    def test_strategy_options_are_validated(self, figure2):
        from repro.api import RegistryError

        with pytest.raises(RegistryError, match="valid options"):
            LabelingSession.fit(figure2, 5, strategy="top_down", nope=1)

    def test_accepts_counter(self, figure2_counter):
        session = LabelingSession.fit(figure2_counter, 5)
        assert session.kind == "label"


class TestEstimation:
    def test_estimate_matches_label_estimator(self, figure2, workload):
        session = LabelingSession.fit(figure2, 5)
        from repro import LabelEstimator

        reference = LabelEstimator(session.artifact)
        for pattern, _ in workload.iter_with_counts():
            assert session.estimate(pattern) == reference.estimate(pattern)

    def test_estimate_many_patternset_and_list_agree(self, figure2, workload):
        session = LabelingSession.fit(figure2, 5)
        patterns = [workload.pattern(i) for i in range(len(workload))]
        assert session.estimate_many(workload) == session.estimate_many(
            patterns
        )

    def test_evaluate_returns_error_summary(self, figure2, workload):
        session = LabelingSession.fit(figure2, 5)
        summary = session.evaluate(workload)
        assert summary.n_patterns == len(workload)
        assert summary.max_abs >= 0.0


class TestSaveLoad:
    @pytest.mark.parametrize("strategy", ["top_down", "greedy_flexible"])
    def test_round_trip_is_estimate_identical(
        self, figure2, workload, tmp_path, strategy
    ):
        session = LabelingSession.fit(figure2, 5, strategy=strategy)
        path = session.save(tmp_path / "artifact.json")
        reloaded = LabelingSession.load(path)
        assert reloaded.kind == session.kind
        assert reloaded.estimate_many(workload) == session.estimate_many(
            workload
        )

    def test_load_legacy_bare_label(self, figure2, workload, tmp_path):
        session = LabelingSession.fit(figure2, 5)
        path = tmp_path / "legacy.json"
        path.write_text(session.artifact.to_json())
        reloaded = LabelingSession.load(path)
        assert reloaded.kind == "label"
        assert reloaded.estimate_many(workload) == session.estimate_many(
            workload
        )

    def test_load_multi_bundle(self, figure2_counter, workload, tmp_path):
        bundle = MultiLabelBundle(
            (
                build_label(figure2_counter, ["gender", "race"]),
                build_label(figure2_counter, ["age group"]),
            ),
            reduce="mean",
        )
        path = tmp_path / "multi.json"
        dump_artifact(bundle, path)
        session = LabelingSession.load(path)
        assert session.kind == "multi"
        reference = bundle.make_estimator()
        assert session.estimate_many(workload) == [
            reference.estimate(p) for p, _ in workload.iter_with_counts()
        ]


class TestUpdate:
    def test_insert_matches_rebuilt_label(self, figure2):
        session = LabelingSession.fit(figure2, 5)
        attributes = session.artifact.attributes
        new_rows = [("Female", "20-39", "Hispanic", "single")] * 3
        rows = Dataset.from_rows(list(figure2.attribute_names), new_rows)
        session.update(inserted=rows)
        names = list(figure2.attribute_names)
        grown = Dataset.from_rows(
            names,
            [tuple(row[a] for a in names) for row in figure2.iter_rows()]
            + new_rows,
        )
        rebuilt = build_label(PatternCounter(grown), attributes)
        assert session.artifact.total == rebuilt.total
        assert dict(session.artifact.pc) == dict(rebuilt.pc)
        # Search stats describe the pre-update label; they are dropped.
        assert session.result is None

    def test_insert_then_delete_is_identity(self, figure2, workload):
        session = LabelingSession.fit(figure2, 5)
        before = session.estimate_many(workload)
        rows = Dataset.from_rows(
            list(figure2.attribute_names),
            [("Male", "20-39", "Caucasian", "married")],
        )
        session.update(inserted=rows)
        session.update(deleted=rows)
        assert session.estimate_many(workload) == before

    def test_update_requires_a_batch(self, figure2):
        session = LabelingSession.fit(figure2, 5)
        with pytest.raises(SessionError, match="at least one"):
            session.update()

    def test_update_rejected_for_flexible(self, figure2):
        session = LabelingSession.fit(figure2, 5, strategy="greedy_flexible")
        rows = Dataset.from_rows(
            list(figure2.attribute_names),
            [("Male", "20-39", "Caucasian", "married")],
        )
        with pytest.raises(SessionError, match="subset labels"):
            session.update(inserted=rows)


class TestConstruction:
    def test_rejects_unsupported_artifact(self):
        with pytest.raises(SessionError, match="unsupported artifact"):
            LabelingSession({"not": "an artifact"})

    def test_repr_names_kind_and_size(self, figure2):
        session = LabelingSession.fit(figure2, 5)
        assert "kind='label'" in repr(session)
