"""Unit tests for the sampling baseline."""

import numpy as np
import pytest

from repro import Pattern, PatternCounter, full_pattern_set
from repro.baselines.sampling import SamplingEstimator, sample_size_for_bound


class TestSampleSize:
    def test_bound_plus_vc(self, figure2):
        # |VC| = 2 + 2 + 3 + 3 = 10.
        assert sample_size_for_bound(figure2, 30) == 40

    def test_bluenile_vc(self, bluenile_small):
        vc = sum(c.cardinality for c in bluenile_small.schema)
        assert sample_size_for_bound(bluenile_small, 10) == 10 + vc


class TestSamplingEstimator:
    def test_full_sample_is_exact(self, figure2, rng):
        estimator = SamplingEstimator(figure2, 18, rng)
        counter = PatternCounter(figure2)
        pattern = Pattern({"gender": "Female"})
        assert estimator.estimate(pattern) == counter.count(pattern)
        assert estimator.scale == 1.0

    def test_scale_factor(self, figure2, rng):
        estimator = SamplingEstimator(figure2, 6, rng)
        assert estimator.scale == pytest.approx(3.0)
        assert estimator.size == 6

    def test_sample_size_clamped_to_data(self, figure2, rng):
        estimator = SamplingEstimator(figure2, 500, rng)
        assert estimator.size == 18

    def test_invalid_size_rejected(self, figure2, rng):
        with pytest.raises(ValueError, match="positive"):
            SamplingEstimator(figure2, 0, rng)

    def test_unsampled_pattern_estimates_zero(self, bluenile_small, rng):
        estimator = SamplingEstimator(bluenile_small, 20, rng)
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        estimates = estimator.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        # A 20-row sample cannot cover thousands of patterns.
        assert (estimates == 0).sum() > len(pattern_set) / 2

    def test_estimate_codes_matches_estimate(self, figure2, rng):
        estimator = SamplingEstimator(figure2, 9, rng)
        counter = PatternCounter(figure2)
        pattern_set = full_pattern_set(counter)
        vectorized = estimator.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        for index in range(len(pattern_set)):
            single = estimator.estimate(pattern_set.pattern(index))
            assert vectorized[index] == pytest.approx(single)

    def test_estimates_scale_with_overall_mass(self, bluenile_small, rng):
        """Summed estimates over all full patterns ≈ |D| in expectation."""
        estimator = SamplingEstimator(bluenile_small, 400, rng)
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        estimates = estimator.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        assert estimates.sum() == pytest.approx(
            bluenile_small.n_rows, rel=0.05
        )

    def test_larger_samples_reduce_mean_error(self, bluenile_small):
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)

        def mean_error(size: int) -> float:
            errors = []
            for seed in range(5):
                rng = np.random.default_rng(seed)
                est = SamplingEstimator(
                    bluenile_small, size, rng
                ).estimate_codes(pattern_set.attributes, pattern_set.combos)
                errors.append(
                    float(np.abs(est - pattern_set.counts).mean())
                )
            return float(np.mean(errors))

        assert mean_error(2000) < mean_error(50)
