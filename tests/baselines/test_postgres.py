"""Unit tests for the simulated PostgreSQL estimator."""

import numpy as np
import pytest

from repro import Pattern, PatternCounter, full_pattern_set
from repro.baselines.postgres import (
    PostgresEstimator,
    _haas_stokes_n_distinct,
)
from repro.dataset.table import Dataset


class TestHaasStokes:
    def test_no_singletons_returns_sample_distinct(self):
        counts = np.array([10, 5, 3])
        assert _haas_stokes_n_distinct(counts, 18, 1000) == 3.0

    def test_full_scan_returns_distinct(self):
        counts = np.array([3, 1])
        assert _haas_stokes_n_distinct(counts, 4, 4) == 2.0

    def test_singletons_extrapolate_upward(self):
        counts = np.array([1, 1, 1, 2])
        estimate = _haas_stokes_n_distinct(counts, 5, 100_000)
        assert estimate > 4

    def test_clamped_to_total_rows(self):
        counts = np.array([1] * 10)
        estimate = _haas_stokes_n_distinct(counts, 10, 12)
        assert estimate <= 12

    def test_empty_sample(self):
        assert _haas_stokes_n_distinct(np.array([]), 0, 100) == 0.0


class TestPostgresEstimator:
    def test_full_analyze_gives_exact_marginals(self, figure2, rng):
        # 18 rows < 30,000 sample: ANALYZE sees everything.
        estimator = PostgresEstimator(figure2, rng)
        counter = PatternCounter(figure2)
        for value in ("Female", "Male"):
            pattern = Pattern({"gender": value})
            assert estimator.estimate(pattern) == pytest.approx(
                counter.count(pattern)
            )

    def test_independence_combination(self, figure2, rng):
        estimator = PostgresEstimator(figure2, rng)
        pattern = Pattern({"gender": "Female", "race": "Hispanic"})
        expected = 18 * (9 / 18) * (6 / 18)
        assert estimator.estimate(pattern) == pytest.approx(expected)

    def test_row_estimate_clamped_to_one(self, rng):
        data = Dataset.from_columns(
            {"a": ["x"] * 99 + ["y"], "b": ["1"] * 99 + ["2"]}
        )
        estimator = PostgresEstimator(data, rng)
        tiny = Pattern({"a": "y", "b": "2"})
        assert estimator.estimate(tiny) >= 1.0

    def test_estimate_codes_matches_estimate(self, bluenile_small, rng):
        estimator = PostgresEstimator(bluenile_small, rng)
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        vectorized = estimator.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        for index in range(0, len(pattern_set), 113):
            single = estimator.estimate(pattern_set.pattern(index))
            assert vectorized[index] == pytest.approx(single)

    def test_statistics_entries_cover_observed_values(
        self, bluenile_small, rng
    ):
        estimator = PostgresEstimator(bluenile_small, rng)
        stats = estimator.statistics
        assert set(stats) == set(bluenile_small.attribute_names)
        total_domain = sum(
            c.cardinality for c in bluenile_small.schema
        )
        assert 0 < estimator.n_statistic_entries <= total_domain

    def test_statistics_target_limits_mcvs(self, rng):
        # 300 distinct repeated values, target 10 -> at most 10 MCVs.
        values = [str(i % 300) for i in range(3000)]
        data = Dataset.from_columns({"a": values})
        estimator = PostgresEstimator(data, rng, statistics_target=10)
        # NOTE: the MCV *list length* cap is DEFAULT_STATISTICS_TARGET in
        # stock postgres; our simplified policy keeps >1-count values up
        # to the default cap.  The sample is what the target controls.
        stat = estimator.statistics["a"]
        assert stat.n_entries <= 100

    def test_invalid_target_rejected(self, figure2, rng):
        with pytest.raises(ValueError, match="positive"):
            PostgresEstimator(figure2, rng, statistics_target=0)

    def test_accuracy_independent_of_bound_concept(
        self, bluenile_small, rng
    ):
        """The figures' flat gray line: two estimators built with the
        same seed produce identical errors regardless of any 'bound'."""
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        first = PostgresEstimator(
            bluenile_small, np.random.default_rng(3)
        ).estimate_codes(pattern_set.attributes, pattern_set.combos)
        second = PostgresEstimator(
            bluenile_small, np.random.default_rng(3)
        ).estimate_codes(pattern_set.attributes, pattern_set.combos)
        np.testing.assert_allclose(first, second)

    def test_selectivity_of_unseen_value_positive(self, rng):
        data = Dataset.from_columns(
            {"a": ["x"] * 50 + ["y"] * 50},
            domains={"a": ("x", "y", "z")},
        )
        estimator = PostgresEstimator(data, rng)
        # "z" never occurs; postgres still gives the non-MCV fallback.
        assert estimator.selectivity("a", "z") >= 0.0
