"""Tests for the dependency-tree (Chow–Liu) histogram baseline."""

import numpy as np
import pytest

from repro import ErrorSummary, Pattern, PatternCounter, full_pattern_set
from repro.baselines.dephist import DependencyTreeEstimator
from repro.baselines.independence import IndependenceEstimator
from repro.dataset.table import Dataset


class TestTreeStructure:
    def test_n_minus_one_edges(self, figure2):
        estimator = DependencyTreeEstimator(figure2)
        assert len(estimator.edges) == figure2.n_attributes - 1

    def test_strong_dependencies_selected(self, compas_small):
        """The score cluster's functional dependencies carry maximal MI,
        so the tree must include e.g. DecileScore—ScoreText."""
        estimator = DependencyTreeEstimator(compas_small)
        edge_sets = {frozenset(edge) for edge in estimator.edges}
        assert frozenset({"DecileScore", "ScoreText"}) in edge_sets
        assert frozenset({"Scale_ID", "DisplayText"}) in edge_sets

    def test_size_counts_edge_entries(self, figure2):
        estimator = DependencyTreeEstimator(figure2)
        assert estimator.size > 0
        # At most the sum of pairwise domain products.
        maximum = sum(
            figure2.schema[u].cardinality * figure2.schema[v].cardinality
            for u, v in estimator.edges
        )
        assert estimator.size <= maximum


class TestEstimates:
    def test_exact_on_marginals(self, figure2):
        estimator = DependencyTreeEstimator(figure2)
        counter = PatternCounter(figure2)
        for value in ("Female", "Male"):
            pattern = Pattern({"gender": value})
            assert estimator.estimate(pattern) == pytest.approx(
                counter.count(pattern)
            )

    def test_exact_on_tree_edges(self, figure2):
        """A pattern binding exactly one tree edge factorizes exactly."""
        estimator = DependencyTreeEstimator(figure2)
        counter = PatternCounter(figure2)
        left, right = estimator.edges[0]
        for row in figure2.head(6).iter_rows():
            pattern = Pattern({left: row[left], right: row[right]})
            assert estimator.estimate(pattern) == pytest.approx(
                counter.count(pattern), abs=1e-9
            )

    def test_estimate_codes_matches_estimate(self, bluenile_small):
        estimator = DependencyTreeEstimator(bluenile_small)
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        vectorized = estimator.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        for index in range(0, len(pattern_set), 211):
            assert vectorized[index] == pytest.approx(
                estimator.estimate(pattern_set.pattern(index)), rel=1e-9
            )

    def test_beats_independence_on_correlated_data(self, bluenile_small):
        """The whole point of dependency histograms: capturing the
        strongest pairwise dependencies must help."""
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        tree = DependencyTreeEstimator(bluenile_small)
        plain = IndependenceEstimator(bluenile_small)
        tree_summary = ErrorSummary.from_arrays(
            pattern_set.counts,
            tree.estimate_codes(pattern_set.attributes, pattern_set.combos),
        )
        plain_summary = ErrorSummary.from_arrays(
            pattern_set.counts,
            plain.estimate_codes(pattern_set.attributes, pattern_set.combos),
        )
        assert tree_summary.mean_abs < plain_summary.mean_abs

    def test_functional_dependency_chain_exact(self):
        """On a pure chain A -> B -> C the tree estimate is exact."""
        rows = []
        for i in range(60):
            a = str(i % 3)
            rows.append((a, f"b{a}", f"c{a}"))
        data = Dataset.from_rows(["A", "B", "C"], rows)
        estimator = DependencyTreeEstimator(data)
        counter = PatternCounter(data)
        pattern = Pattern({"A": "0", "B": "b0", "C": "c0"})
        assert estimator.estimate(pattern) == pytest.approx(
            counter.count(pattern)
        )

    def test_zero_probability_pattern(self, figure2):
        estimator = DependencyTreeEstimator(figure2)
        # under 20 + married never co-occur in Figure 2; if that pair is
        # a tree edge the estimate is exactly 0, otherwise >= 0.
        pattern = Pattern(
            {"age group": "under 20", "marital status": "married"}
        )
        assert estimator.estimate(pattern) >= 0.0
