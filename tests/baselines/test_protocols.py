"""Protocol conformance: every estimator satisfies the shared interface."""

import numpy as np
import pytest

from repro import LabelEstimator, MultiLabelEstimator, build_label
from repro.baselines.base import CardinalityEstimator, TabularEstimator
from repro.baselines.dephist import DependencyTreeEstimator
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.postgres import PostgresEstimator
from repro.baselines.sampling import SamplingEstimator
from repro.core.flexlabel import FlexibleEstimator, greedy_flexible_label


@pytest.fixture
def estimators(figure2, rng):
    from repro import PatternCounter

    counter = PatternCounter(figure2)
    label = build_label(counter, ["gender", "race"])
    return {
        "label": LabelEstimator(label),
        "multi": MultiLabelEstimator([label]),
        "flexible": FlexibleEstimator(
            greedy_flexible_label(counter, 4)
        ),
        "independence": IndependenceEstimator(figure2),
        "dephist": DependencyTreeEstimator(figure2),
        "postgres": PostgresEstimator(figure2, rng),
        "sampling": SamplingEstimator(figure2, 10, rng),
    }


class TestCardinalityProtocol:
    def test_all_satisfy_estimate_protocol(self, estimators):
        for name, estimator in estimators.items():
            assert isinstance(estimator, CardinalityEstimator), name

    def test_estimates_are_floats(self, estimators):
        from repro import Pattern

        pattern = Pattern({"gender": "Female"})
        for name, estimator in estimators.items():
            value = estimator.estimate(pattern)
            assert isinstance(value, float), name
            assert value >= 0.0, name


class TestTabularProtocol:
    TABULAR = ("independence", "dephist", "postgres", "sampling")

    def test_tabular_estimators_satisfy_protocol(self, estimators):
        for name in self.TABULAR:
            assert isinstance(estimators[name], TabularEstimator), name

    def test_tabular_output_shape(self, estimators, figure2):
        combos = figure2.codes_matrix(["gender", "race"])[:5]
        for name in self.TABULAR:
            out = estimators[name].estimate_codes(
                ["gender", "race"], combos
            )
            assert isinstance(out, np.ndarray), name
            assert out.shape == (5,), name
            assert (out >= 0).all(), name
