"""Tests for the independence-only (VC-only) baseline."""

import pytest

from repro import (
    ErrorSummary,
    LabelEstimator,
    Pattern,
    PatternCounter,
    build_label,
    full_pattern_set,
)
from repro.baselines.independence import IndependenceEstimator


class TestIndependenceEstimator:
    def test_matches_empty_label(self, figure2):
        """The baseline is definitionally the empty-S label's estimate."""
        baseline = IndependenceEstimator(figure2)
        empty = LabelEstimator(build_label(figure2, []))
        patterns = [
            Pattern({"gender": "Female"}),
            Pattern({"gender": "Male", "race": "Hispanic"}),
            Pattern(
                {
                    "gender": "Female",
                    "age group": "20-39",
                    "marital status": "married",
                }
            ),
        ]
        for pattern in patterns:
            assert baseline.estimate(pattern) == pytest.approx(
                empty.estimate(pattern)
            )

    def test_exact_on_marginals(self, figure2):
        baseline = IndependenceEstimator(figure2)
        counter = PatternCounter(figure2)
        for value in ("Female", "Male"):
            pattern = Pattern({"gender": value})
            assert baseline.estimate(pattern) == counter.count(pattern)

    def test_example_2_7_miss(self):
        """Correlated attributes defeat independence (Example 2.7)."""
        from repro.dataset.table import Dataset

        rows = []
        for b2 in (0, 1):
            for b3 in (0, 1):
                rows.append((str(b2), str(b2), str(b3)))
        data = Dataset.from_rows(["A1", "A2", "A3"], rows)
        baseline = IndependenceEstimator(data)
        counter = PatternCounter(data)
        target = Pattern({"A1": "0", "A2": "0", "A3": "0"})
        assert counter.count(target) == 1
        assert baseline.estimate(target) == pytest.approx(0.5)  # 2x off

    def test_estimate_codes_matches_estimate(self, bluenile_small):
        baseline = IndependenceEstimator(bluenile_small)
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        vectorized = baseline.estimate_codes(
            pattern_set.attributes, pattern_set.combos
        )
        for index in range(0, len(pattern_set), 173):
            assert vectorized[index] == pytest.approx(
                baseline.estimate(pattern_set.pattern(index))
            )

    def test_any_pc_label_beats_independence_on_correlated_data(
        self, bluenile_small
    ):
        """What PC buys: even a tiny subset label beats VC-only."""
        counter = PatternCounter(bluenile_small)
        pattern_set = full_pattern_set(counter)
        baseline = IndependenceEstimator(bluenile_small)
        independence = ErrorSummary.from_arrays(
            pattern_set.counts,
            baseline.estimate_codes(
                pattern_set.attributes, pattern_set.combos
            ),
        )
        from repro import evaluate_label

        labeled = evaluate_label(
            counter, ("cut", "polish"), pattern_set
        )
        assert labeled.max_abs < independence.max_abs

    def test_size_is_vc_size(self, figure2):
        assert IndependenceEstimator(figure2).size == 10
