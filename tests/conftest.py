"""Shared fixtures.

``figure2`` is the paper's Figure 2 sample relation (18 tuples of a
simplified COMPAS), used by the worked-example tests; the ``*_small``
fixtures are session-scoped shrunk versions of the three evaluation
datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, PatternCounter
from repro.datasets import load_dataset

FIGURE2_ROWS = [
    ("Female", "under 20", "African-American", "single"),
    ("Male", "20-39", "African-American", "divorced"),
    ("Male", "under 20", "Hispanic", "single"),
    ("Male", "20-39", "Caucasian", "married"),
    ("Female", "20-39", "African-American", "divorced"),
    ("Male", "20-39", "Caucasian", "divorced"),
    ("Female", "20-39", "African-American", "married"),
    ("Male", "under 20", "African-American", "single"),
    ("Female", "20-39", "Caucasian", "divorced"),
    ("Male", "under 20", "Caucasian", "single"),
    ("Male", "20-39", "Hispanic", "divorced"),
    ("Female", "under 20", "Hispanic", "single"),
    ("Female", "20-39", "Hispanic", "married"),
    ("Female", "under 20", "Caucasian", "single"),
    ("Female", "20-39", "Caucasian", "married"),
    ("Male", "20-39", "Hispanic", "married"),
    ("Male", "20-39", "African-American", "married"),
    ("Female", "20-39", "Hispanic", "divorced"),
]

FIGURE2_ATTRIBUTES = ["gender", "age group", "race", "marital status"]


@pytest.fixture
def figure2() -> Dataset:
    """The 18-tuple sample of the paper's Figure 2."""
    return Dataset.from_rows(FIGURE2_ATTRIBUTES, FIGURE2_ROWS)


@pytest.fixture
def figure2_counter(figure2: Dataset) -> PatternCounter:
    return PatternCounter(figure2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def bluenile_small() -> Dataset:
    return load_dataset("bluenile", n_rows=4000, seed=1)


@pytest.fixture(scope="session")
def compas_small() -> Dataset:
    return load_dataset("compas", n_rows=3000, seed=1)


@pytest.fixture(scope="session")
def creditcard_small() -> Dataset:
    return load_dataset("creditcard", n_rows=2000, seed=1)
