"""Tests for the three evaluation-dataset generators.

These assert the *shape* facts the reproduction depends on: schema
(attribute counts and domain sizes per Section IV-A), the Figure 1
marginals for COMPAS, and the injected correlation structure that the
optimal-label search exploits.
"""

import numpy as np
import pytest

from repro import PatternCounter
from repro.datasets import DATASET_SIZES, load_dataset
from repro.datasets.bluenile import BLUENILE_ATTRIBUTES, generate_bluenile
from repro.datasets.compas import (
    COMPAS_ATTRIBUTES,
    COMPAS_SIMPLIFIED_ATTRIBUTES,
    generate_compas,
    generate_compas_simplified,
)
from repro.datasets.creditcard import (
    CREDITCARD_ATTRIBUTES,
    generate_creditcard,
)
from repro.labeling import find_correlated_attributes


class TestRegistry:
    def test_load_by_name(self):
        data = load_dataset("bluenile", n_rows=100, seed=0)
        assert data.n_rows == 100

    def test_paper_scale_defaults(self):
        assert DATASET_SIZES == {
            "bluenile": 116_300,
            "compas": 60_843,
            "creditcard": 30_000,
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_deterministic_given_seed(self):
        a = load_dataset("compas", n_rows=500, seed=7)
        b = load_dataset("compas", n_rows=500, seed=7)
        assert a == b
        c = load_dataset("compas", n_rows=500, seed=8)
        assert a != c


class TestBlueNile:
    def test_schema(self):
        data = generate_bluenile(n_rows=200, seed=0)
        assert data.attribute_names == BLUENILE_ATTRIBUTES
        assert data.n_attributes == 7
        cards = dict(
            zip(data.attribute_names, data.schema.cardinalities)
        )
        assert cards["shape"] == 10
        assert cards["cut"] == 4
        assert cards["color"] == 7
        assert cards["clarity"] == 8
        assert cards["polish"] == 3
        assert cards["symmetry"] == 3
        assert cards["fluorescence"] == 5

    def test_round_dominates(self, bluenile_small):
        counts = bluenile_small.value_counts("shape")
        assert counts["Round"] == max(counts.values())

    def test_finishing_cluster_correlated(self, bluenile_small):
        warnings = find_correlated_attributes(
            bluenile_small,
            attributes=["cut", "polish", "symmetry"],
            min_deviation=0.05,
        )
        flagged = {w.message for w in warnings}
        assert any("polish" in m and "symmetry" in m for m in flagged)

    def test_no_missing_values(self, bluenile_small):
        assert not bluenile_small.has_missing


class TestCompas:
    def test_schema(self):
        data = generate_compas(n_rows=200, seed=0)
        assert data.attribute_names == COMPAS_ATTRIBUTES
        assert data.n_attributes == 17

    def test_figure1_marginals(self):
        data = generate_compas(n_rows=40_000, seed=0)
        n = data.n_rows
        gender = data.value_counts("Sex")
        assert gender["Male"] / n == pytest.approx(0.78, abs=0.01)
        race = data.value_counts("Race")
        assert race["African-American"] / n == pytest.approx(0.45, abs=0.02)
        assert race["Caucasian"] / n == pytest.approx(0.36, abs=0.02)
        assert race["Hispanic"] / n == pytest.approx(0.14, abs=0.02)
        age = data.value_counts("Age")
        assert age["20-39"] / n == pytest.approx(0.66, abs=0.02)
        marital = data.value_counts("MaritalStatus")
        assert marital["Single"] / n == pytest.approx(0.75, abs=0.03)

    def test_figure1_gender_race_intersection(self):
        """Hispanic women are rarer than independence predicts (3% vs
        22% * 14% ≈ 3.1% — and far rarer than Hispanic men)."""
        data = generate_compas(n_rows=40_000, seed=0)
        counter = PatternCounter(data)
        from repro import Pattern

        hispanic_female = counter.count(
            Pattern({"Sex": "Female", "Race": "Hispanic"})
        )
        hispanic_male = counter.count(
            Pattern({"Sex": "Male", "Race": "Hispanic"})
        )
        assert hispanic_female / data.n_rows == pytest.approx(0.03, abs=0.01)
        assert hispanic_male > 3 * hispanic_female

    def test_score_cluster_functional_dependencies(self, compas_small):
        """ScoreText and DisplayText are exact functions of their parents."""
        for row in compas_small.head(300).iter_rows():
            decile = int(row["DecileScore"])
            expected = (
                "Low" if decile <= 4 else "Medium" if decile <= 7 else "High"
            )
            assert row["ScoreText"] == expected
        mapping = {}
        for row in compas_small.iter_rows():
            mapping.setdefault(row["Scale_ID"], set()).add(row["DisplayText"])
        assert all(len(texts) == 1 for texts in mapping.values())

    def test_supervision_text_tracks_level(self, compas_small):
        levels = {"1": "Low", "2": "Medium", "3": "Medium with Override", "4": "High"}
        for row in compas_small.head(300).iter_rows():
            assert row["RecSupervisionLevelText"] == levels[
                row["RecSupervisionLevel"]
            ]

    def test_simplified_schema_matches_figure2(self):
        data = generate_compas_simplified(n_rows=500, seed=0)
        assert data.attribute_names == COMPAS_SIMPLIFIED_ATTRIBUTES


class TestCreditCard:
    def test_schema(self):
        data = generate_creditcard(n_rows=500, seed=0)
        assert data.attribute_names == CREDITCARD_ATTRIBUTES
        assert data.n_attributes == 24

    def test_numeric_attributes_have_five_buckets(self, creditcard_small):
        cards = dict(
            zip(
                creditcard_small.attribute_names,
                creditcard_small.schema.cardinalities,
            )
        )
        for name in ("LIMIT_BAL", "AGE", "BILL_AMT1", "PAY_AMT3"):
            assert cards[name] == 5
        assert cards["SEX"] == 2
        assert cards["default"] == 2

    def test_pay_chain_autocorrelated(self, creditcard_small):
        """Adjacent repayment statuses deviate strongly from independence."""
        warnings = find_correlated_attributes(
            creditcard_small,
            attributes=["PAY_1", "PAY_2"],
            min_deviation=0.1,
        )
        assert warnings

    def test_bill_amounts_track_limit(self, creditcard_small):
        # Equal-width bucketization compresses the monetary correlation
        # into the first bins, so the TV distance is modest but present.
        warnings = find_correlated_attributes(
            creditcard_small,
            attributes=["LIMIT_BAL", "BILL_AMT1"],
            min_deviation=0.04,
        )
        assert warnings

    def test_bill_chain_correlated(self, creditcard_small):
        warnings = find_correlated_attributes(
            creditcard_small,
            attributes=["BILL_AMT1", "BILL_AMT2"],
            min_deviation=0.04,
        )
        assert warnings

    def test_inactive_segment_creates_heavy_tuples(self):
        """The point-mass segment: the most frequent full tuple must
        carry a multiplicity far above the uniform-ish tail."""
        from repro import PatternCounter, full_pattern_set

        data = generate_creditcard(n_rows=10_000, seed=0)
        counts = full_pattern_set(PatternCounter(data)).counts
        assert counts.max() > 50
