"""Unit tests for the synthetic-relation generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    ConditionalAttribute,
    DerivedAttribute,
    MarginalAttribute,
    SyntheticSpec,
)


def rng():
    return np.random.default_rng(99)


class TestMarginalAttribute:
    def test_marginal_frequencies_converge(self):
        spec = SyntheticSpec(
            [MarginalAttribute("a", ("x", "y"), (0.8, 0.2))]
        )
        data = spec.generate(20_000, rng())
        counts = data.value_counts("a")
        assert counts["x"] / 20_000 == pytest.approx(0.8, abs=0.02)

    def test_probability_category_mismatch_rejected(self):
        with pytest.raises(ValueError, match="probabilities"):
            MarginalAttribute("a", ("x", "y"), (1.0,))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MarginalAttribute("a", ("x", "y"), (1.5, -0.5))

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            MarginalAttribute("a", ("x", "y"), (0.0, 0.0))


class TestConditionalAttribute:
    def build(self, noise=0.0):
        return SyntheticSpec(
            [
                MarginalAttribute("p", ("u", "v"), (0.5, 0.5)),
                ConditionalAttribute(
                    name="c",
                    categories=("0", "1"),
                    parents=("p",),
                    cpt={("u",): (0.9, 0.1), ("v",): (0.1, 0.9)},
                    noise=noise,
                ),
            ]
        )

    def test_conditional_distribution_respected(self):
        data = self.build().generate(20_000, rng())
        u_rows = data.filter_equals("p", "u")
        share = u_rows.value_counts("c")["0"] / u_rows.n_rows
        assert share == pytest.approx(0.9, abs=0.02)

    def test_noise_blends_toward_uniform(self):
        data = self.build(noise=1.0).generate(20_000, rng())
        u_rows = data.filter_equals("p", "u")
        share = u_rows.value_counts("c")["0"] / u_rows.n_rows
        assert share == pytest.approx(0.5, abs=0.03)

    def test_default_row_used_for_unlisted_combo(self):
        spec = SyntheticSpec(
            [
                MarginalAttribute("p", ("u", "v"), (0.5, 0.5)),
                ConditionalAttribute(
                    name="c",
                    categories=("0", "1"),
                    parents=("p",),
                    cpt={("u",): (1.0, 0.0)},
                    default=(0.0, 1.0),
                ),
            ]
        )
        data = spec.generate(5_000, rng())
        v_rows = data.filter_equals("p", "v")
        assert v_rows.value_counts("c")["1"] == v_rows.n_rows

    def test_multi_parent_cpt(self):
        spec = SyntheticSpec(
            [
                MarginalAttribute("p", ("u", "v"), (0.5, 0.5)),
                MarginalAttribute("q", ("s", "t"), (0.5, 0.5)),
                ConditionalAttribute(
                    name="c",
                    categories=("0", "1"),
                    parents=("p", "q"),
                    cpt={("u", "s"): (1.0, 0.0)},
                    default=(0.0, 1.0),
                ),
            ]
        )
        data = spec.generate(4_000, rng())
        both = data.filter_equals("p", "u").filter_equals("q", "s")
        assert both.value_counts("c")["0"] == both.n_rows

    def test_validation(self):
        with pytest.raises(ValueError, match="parent"):
            ConditionalAttribute("c", ("0",), (), {}, None)
        with pytest.raises(ValueError, match="noise"):
            ConditionalAttribute(
                "c", ("0",), ("p",), {}, None, noise=1.5
            )
        with pytest.raises(ValueError, match="arity"):
            ConditionalAttribute(
                "c", ("0", "1"), ("p",), {("u", "v"): (0.5, 0.5)}
            )
        with pytest.raises(ValueError, match="width"):
            ConditionalAttribute(
                "c", ("0", "1"), ("p",), {("u",): (1.0,)}
            )


class TestDerivedAttribute:
    def test_function_applied_exactly(self):
        spec = SyntheticSpec(
            [
                MarginalAttribute("n", ("1", "2", "3"), (0.3, 0.3, 0.4)),
                DerivedAttribute(
                    name="band",
                    categories=("low", "high"),
                    parents=("n",),
                    func=lambda n: "low" if int(n) <= 2 else "high",
                ),
            ]
        )
        data = spec.generate(2_000, rng())
        for row in data.iter_rows():
            expected = "low" if int(row["n"]) <= 2 else "high"
            assert row["band"] == expected

    def test_noise_flips_some_rows(self):
        spec = SyntheticSpec(
            [
                MarginalAttribute("n", ("1", "2"), (0.5, 0.5)),
                DerivedAttribute(
                    name="copy",
                    categories=("1", "2"),
                    parents=("n",),
                    func=lambda n: n,
                    noise=0.5,
                ),
            ]
        )
        data = spec.generate(5_000, rng())
        mismatches = sum(
            1 for row in data.iter_rows() if row["copy"] != row["n"]
        )
        assert 0 < mismatches < 2_500  # noise flips ~25% (half stay by luck)

    def test_undeclared_category_rejected(self):
        spec = SyntheticSpec(
            [
                MarginalAttribute("n", ("1",), (1.0,)),
                DerivedAttribute(
                    name="bad",
                    categories=("x",),
                    parents=("n",),
                    func=lambda n: "zzz",
                ),
            ]
        )
        with pytest.raises(ValueError, match="not a declared category"):
            spec.generate(10, rng())


class TestSyntheticSpec:
    def test_parent_must_be_declared_first(self):
        with pytest.raises(ValueError, match="declared earlier"):
            SyntheticSpec(
                [
                    ConditionalAttribute(
                        "c", ("0",), ("p",), {}, default=(1.0,)
                    ),
                    MarginalAttribute("p", ("u",), (1.0,)),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SyntheticSpec(
                [
                    MarginalAttribute("a", ("x",), (1.0,)),
                    MarginalAttribute("a", ("y",), (1.0,)),
                ]
            )

    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(
            [MarginalAttribute("a", ("x", "y"), (0.5, 0.5))]
        )
        d1 = spec.generate(100, np.random.default_rng(5))
        d2 = spec.generate(100, np.random.default_rng(5))
        assert d1 == d2

    def test_zero_rows(self):
        spec = SyntheticSpec(
            [MarginalAttribute("a", ("x",), (1.0,))]
        )
        assert spec.generate(0, rng()).n_rows == 0

    def test_negative_rows_rejected(self):
        spec = SyntheticSpec(
            [MarginalAttribute("a", ("x",), (1.0,))]
        )
        with pytest.raises(ValueError, match="non-negative"):
            spec.generate(-1, rng())
