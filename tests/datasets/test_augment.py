"""Tests for random-tuple augmentation (Figure 7 workload)."""

import numpy as np
import pytest

from repro import PatternCounter
from repro.datasets import load_dataset
from repro.datasets.augment import append_random_tuples, grow_dataset


class TestAppendRandomTuples:
    def test_row_count_and_schema_preserved(self, bluenile_small, rng):
        grown = append_random_tuples(bluenile_small, 500, rng)
        assert grown.n_rows == bluenile_small.n_rows + 500
        assert grown.schema == bluenile_small.schema

    def test_original_rows_unchanged(self, bluenile_small, rng):
        grown = append_random_tuples(bluenile_small, 100, rng)
        assert grown.head(bluenile_small.n_rows) == bluenile_small

    def test_no_missing_values_added(self, bluenile_small, rng):
        grown = append_random_tuples(bluenile_small, 200, rng)
        assert not grown.has_missing

    def test_zero_rows_is_identity_sized(self, bluenile_small, rng):
        grown = append_random_tuples(bluenile_small, 0, rng)
        assert grown.n_rows == bluenile_small.n_rows

    def test_negative_rejected(self, bluenile_small, rng):
        with pytest.raises(ValueError, match="non-negative"):
            append_random_tuples(bluenile_small, -1, rng)

    def test_uniform_values_flatten_marginals(self, rng):
        data = load_dataset("bluenile", n_rows=1000, seed=0)
        grown = append_random_tuples(data, 100_000, rng)
        counts = grown.value_counts("cut")
        shares = [c / grown.n_rows for c in counts.values()]
        # Dominated by uniform tail: every share near 1/4.
        assert max(shares) - min(shares) < 0.05


class TestGrowDataset:
    def test_target_factor(self, bluenile_small, rng):
        grown = grow_dataset(bluenile_small, 2.0, rng)
        assert grown.n_rows == 2 * bluenile_small.n_rows

    def test_factor_one_is_identity(self, bluenile_small, rng):
        grown = grow_dataset(bluenile_small, 1.0, rng)
        assert grown.n_rows == bluenile_small.n_rows

    def test_factor_below_one_rejected(self, bluenile_small, rng):
        with pytest.raises(ValueError, match=">= 1"):
            grow_dataset(bluenile_small, 0.5, rng)

    def test_new_patterns_inflate_label_sizes(self, rng):
        """The paper's Figure 7 observation: random tuples add patterns,
        so candidate labels get bigger and fewer subsets fit a bound."""
        data = load_dataset("bluenile", n_rows=2000, seed=0)
        grown = grow_dataset(data, 5.0, rng)
        original = PatternCounter(data)
        bigger = PatternCounter(grown)
        subset = ("cut", "polish", "symmetry")
        assert bigger.label_size(subset) >= original.label_size(subset)
