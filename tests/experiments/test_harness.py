"""Unit tests for the experiment harness plumbing."""

import pytest

from repro.experiments.harness import ResultTable, Scale


class TestResultTable:
    def make(self) -> ResultTable:
        table = ResultTable("demo", ["x", "y"])
        table.add(x=1, y=2.0)
        table.add(x=2, y=4.5)
        return table

    def test_add_and_len(self):
        assert len(self.make()) == 2

    def test_row_schema_enforced(self):
        table = ResultTable("demo", ["x"])
        with pytest.raises(ValueError, match="missing"):
            table.add()
        with pytest.raises(ValueError, match="extra"):
            table.add(x=1, z=2)

    def test_column_extraction(self):
        assert self.make().column("x") == [1, 2]
        with pytest.raises(KeyError):
            self.make().column("zzz")

    def test_where_filters(self):
        filtered = self.make().where(x=2)
        assert len(filtered) == 1
        assert filtered.column("y") == [4.5]

    def test_to_text_contains_headers_and_rows(self):
        text = self.make().to_text()
        assert text.startswith("demo")
        assert "x" in text and "y" in text
        assert "4.5" in text

    def test_to_csv(self):
        csv_text = self.make().to_csv()
        assert csv_text.splitlines()[0] == "x,y"
        assert len(csv_text.splitlines()) == 3

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            ResultTable("demo", [])

    def test_float_formatting(self):
        table = ResultTable("demo", ["v"])
        table.add(v=0.000123)
        table.add(v=123456.0)
        table.add(v=float("nan"))
        text = table.to_text()
        assert "nan" in text


class TestScale:
    def test_paper_matches_section_iv(self):
        scale = Scale.paper()
        assert scale.dataset_rows["bluenile"] == 116_300
        assert scale.dataset_rows["compas"] == 60_843
        assert scale.dataset_rows["creditcard"] == 30_000
        assert scale.bounds[0] == 10 and scale.bounds[-1] == 100
        assert scale.candidate_bounds == (10, 30, 50, 70, 100)
        assert scale.sublabel_bound == 100
        assert scale.sample_repeats == 5
        assert scale.naive_time_limit == 1800.0

    def test_ci_is_smaller(self):
        paper, ci = Scale.paper(), Scale.ci()
        for name in paper.dataset_rows:
            assert ci.dataset_rows[name] < paper.dataset_rows[name]
        assert max(ci.bounds) <= max(paper.bounds)
