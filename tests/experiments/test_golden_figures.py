"""Golden regression tests for the figure experiment drivers.

The Fig. 4/5 (accuracy vs label size) and Fig. 9 (candidates examined)
drivers are run at a tiny, fully seeded scale and their complete result
tables are compared against checked-in JSON goldens.  Any refactor of
the counting kernel, the evaluation path, or the search — however
innocent — that silently shifts an accuracy number or a candidate count
fails here first.

To intentionally re-freeze after a *reviewed* behavior change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_figures.py

then commit the rewritten files under ``tests/experiments/goldens/``.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.datasets import load_dataset
from repro.experiments.accuracy import accuracy_vs_label_size
from repro.experiments.candidates import candidates_vs_bound

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"

# Small-seed scales: big enough for non-trivial labels, small enough to
# keep the full sweep under a few seconds.
ACCURACY_CONFIG = {"n_rows": 1200, "seed": 7, "bounds": (10, 25)}
CANDIDATES_CONFIG = {"n_rows": 1000, "seed": 7, "bounds": (10, 30)}


def _run_accuracy():
    data = load_dataset(
        "bluenile",
        n_rows=ACCURACY_CONFIG["n_rows"],
        seed=ACCURACY_CONFIG["seed"],
    )
    return accuracy_vs_label_size(
        data,
        "bluenile-golden",
        ACCURACY_CONFIG["bounds"],
        sample_repeats=2,
        seed=0,
    )


def _run_candidates():
    data = load_dataset(
        "bluenile",
        n_rows=CANDIDATES_CONFIG["n_rows"],
        seed=CANDIDATES_CONFIG["seed"],
    )
    return candidates_vs_bound(
        data, "bluenile-golden", CANDIDATES_CONFIG["bounds"]
    )


def _table_payload(table) -> dict:
    return {
        "name": table.name,
        "columns": list(table.columns),
        "rows": table.rows(),
    }


def _check_against_golden(table, golden_name: str) -> None:
    path = GOLDEN_DIR / golden_name
    payload = _table_payload(table)
    if REGEN or not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if REGEN:
            pytest.skip(f"regenerated {path.name}")
        pytest.fail(
            f"golden {path.name} was missing and has been generated; "
            "inspect and commit it"
        )
    golden = json.loads(path.read_text())
    assert payload["columns"] == golden["columns"]
    assert len(payload["rows"]) == len(golden["rows"]), "row count changed"
    for index, (actual, frozen) in enumerate(
        zip(payload["rows"], golden["rows"])
    ):
        for column in golden["columns"]:
            actual_value = actual[column]
            frozen_value = frozen[column]
            where = f"row {index}, column {column!r}"
            if isinstance(frozen_value, float) and isinstance(
                actual_value, (int, float)
            ):
                if math.isnan(frozen_value):
                    assert math.isnan(float(actual_value)), where
                else:
                    assert actual_value == pytest.approx(
                        frozen_value, rel=1e-6, abs=1e-9
                    ), where
            else:
                assert actual_value == frozen_value, where


class TestGoldenFigures:
    def test_fig4_fig5_accuracy_table_frozen(self):
        """Figs. 4 & 5: PCBL / Postgres / Sample accuracy series."""
        _check_against_golden(_run_accuracy(), "fig4_fig5_accuracy.json")

    def test_fig9_candidates_table_frozen(self):
        """Fig. 9: subsets examined, naive vs optimized."""
        _check_against_golden(_run_candidates(), "fig9_candidates.json")

    def test_goldens_are_committed(self):
        """The goldens must live in the repository, not be regenerated
        fresh on every machine (a regenerated golden can never fail)."""
        for name in ("fig4_fig5_accuracy.json", "fig9_candidates.json"):
            assert (GOLDEN_DIR / name).exists(), name
