"""Integration tests for the per-figure experiment functions.

These run every figure's regeneration code at a small scale and assert
the *qualitative shapes* the paper reports — who wins, what decreases,
what dominates — rather than absolute numbers.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    accuracy_vs_label_size,
    candidates_vs_bound,
    figure1_label_card,
    runtime_vs_attribute_count,
    runtime_vs_bound,
    runtime_vs_data_size,
    sublabel_errors,
)
from repro.datasets import generate_compas_simplified


class TestFigure1:
    def test_card_regenerates(self):
        data = generate_compas_simplified(3000, seed=2)
        label, summary, card = figure1_label_card(data)
        assert label.attributes == ("gender", "race")
        assert label.size == 8  # 2 genders x 4 races, all present
        assert "Total size: 3,000" in card
        assert summary.max_abs < 0.05 * data.n_rows  # Fig 1: max 5%


class TestFigure4And5:
    @pytest.fixture(scope="class")
    def table(self, bluenile_small):
        return accuracy_vs_label_size(
            bluenile_small,
            "bluenile",
            bounds=(10, 30, 50),
            sample_repeats=2,
            seed=0,
        )

    def test_one_row_per_bound(self, table):
        assert len(table) == 3
        assert table.column("bound") == [10, 30, 50]

    def test_label_sizes_fit_bounds(self, table):
        for row in table:
            assert row["label_size"] <= row["bound"]

    def test_pcbl_max_error_non_increasing_overall(self, table):
        errors = table.column("pcbl_max_abs")
        assert errors[-1] <= errors[0]

    def test_pcbl_beats_sample_mean_error(self, table):
        """Fig 4: sample mean error is a small multiple of PCBL's."""
        for row in table:
            assert row["pcbl_mean_abs"] < row["sample_mean_abs"]

    def test_pcbl_beats_sample_mean_q(self, table):
        """Fig 5: PCBL outperforms sampling on q-error everywhere."""
        for row in table:
            assert row["pcbl_mean_q"] < row["sample_mean_q"]

    def test_postgres_flat_across_bounds(self, table):
        pg = table.column("pg_max_abs")
        assert len(set(pg)) == 1

    def test_pcbl_competitive_with_postgres_at_large_bounds(self, table):
        last = table.rows()[-1]
        assert last["pcbl_max_abs"] <= last["pg_max_abs"] * 1.5

    def test_percent_columns_consistent(self, table, bluenile_small):
        for row in table:
            expected = 100.0 * row["pcbl_max_abs"] / bluenile_small.n_rows
            assert row["pcbl_max_abs_pct"] == pytest.approx(expected)


class TestFigure6:
    def test_optimized_not_slower_than_naive(self, compas_small):
        table = runtime_vs_bound(
            compas_small, "compas", bounds=(10, 30), naive_time_limit=120
        )
        for row in table:
            if not row["naive_timed_out"]:
                # Allow generous noise at tiny scale; the subset counts
                # are the deterministic part of the claim.
                assert row["optimized_subsets"] <= row["naive_subsets"]

    def test_timeout_recorded(self, creditcard_small):
        table = runtime_vs_bound(
            creditcard_small,
            "creditcard",
            bounds=(40,),
            naive_time_limit=1e-4,
        )
        assert table.rows()[0]["naive_timed_out"] is True


class TestFigure7:
    def test_runtime_rows_track_growth(self, bluenile_small):
        table = runtime_vs_data_size(
            bluenile_small,
            "bluenile",
            growth_factors=(1, 2),
            bound=30,
            naive_time_limit=60,
        )
        sizes = table.column("x")
        assert sizes[1] == 2 * sizes[0]

    def test_augmented_data_prunes_search(self, bluenile_small):
        """The paper's Fig 7 observation: random growth adds patterns, so
        fewer subsets fit the bound."""
        table = runtime_vs_data_size(
            bluenile_small,
            "bluenile",
            growth_factors=(1, 4),
            bound=30,
            naive_time_limit=60,
        )
        rows = table.rows()
        assert rows[1]["optimized_subsets"] <= rows[0]["optimized_subsets"]


class TestFigure8:
    def test_subset_counts_grow_with_attributes(self, compas_small):
        projected = compas_small.select(
            list(compas_small.attribute_names[:7])
        )
        table = runtime_vs_attribute_count(
            projected, "compas", bound=30, naive_time_limit=60
        )
        assert table.column("x") == [3, 4, 5, 6, 7]
        counts = table.column("naive_subsets")
        assert counts == sorted(counts)


class TestFigure9:
    def test_gain_and_monotonicity(self, compas_small):
        table = candidates_vs_bound(
            compas_small, "compas", bounds=(10, 30), naive_time_limit=120
        )
        for row in table:
            assert row["optimized_subsets"] <= row["naive_subsets"]
            assert 0.0 <= row["gain_pct"] <= 100.0
            assert row["optimized_share_of_lattice_pct"] <= 100.0

    def test_high_gain_on_many_attributes(self, compas_small):
        """COMPAS (17 attrs): the paper reports 96–99% gains."""
        table = candidates_vs_bound(
            compas_small, "compas", bounds=(10,), naive_time_limit=120
        )
        assert table.rows()[0]["gain_pct"] > 80.0


class TestFigure10:
    def test_sublabels_never_beat_optimal(self, bluenile_small):
        table = sublabel_errors(bluenile_small, "bluenile", bound=50)
        optimal_rows = table.where(kind="optimal").rows()
        assert len(optimal_rows) == 1
        optimal_error = optimal_rows[0]["max_abs"]
        for row in table.where(kind="sub-label"):
            assert row["max_abs"] >= optimal_error - 1e-9

    def test_one_sublabel_per_removed_attribute(self, bluenile_small):
        table = sublabel_errors(bluenile_small, "bluenile", bound=50)
        optimal = table.where(kind="optimal").rows()[0]
        n_attrs = len(optimal["attributes"].split("|"))
        assert len(table.where(kind="sub-label")) == n_attrs
