"""Tests for the extension experiments."""

import pytest

from repro.experiments.extensions import (
    estimator_shootout,
    multi_label_study,
    objective_comparison,
)


class TestObjectiveComparison:
    @pytest.fixture(scope="class")
    def table(self, bluenile_small):
        return objective_comparison(bluenile_small, "bluenile", bound=40)

    def test_one_row_per_objective(self, table):
        assert len(table) == 4
        assert set(table.column("optimized_for")) == {
            "max-abs",
            "mean-abs",
            "max-q",
            "mean-q",
        }

    def test_each_optimum_wins_its_own_metric(self, table):
        rows = {row["optimized_for"]: row for row in table}
        metric_of = {
            "max-abs": "max_abs",
            "mean-abs": "mean_abs",
            "max-q": "max_q",
            "mean-q": "mean_q",
        }
        for objective, metric in metric_of.items():
            own = rows[objective][metric]
            for other in rows.values():
                assert own <= other[metric] + 1e-9


class TestEstimatorShootout:
    @pytest.fixture(scope="class")
    def table(self, bluenile_small):
        return estimator_shootout(bluenile_small, "bluenile", bound=30)

    def test_all_estimators_present(self, table):
        assert set(table.column("estimator")) == {
            "pcbl-subset",
            "pcbl-flexible",
            "independence",
            "dependency-tree",
            "postgres",
            "sampling",
        }

    def test_dependency_tree_between_independence_and_exact(self, table):
        rows = {row["estimator"]: row for row in table}
        assert (
            rows["dependency-tree"]["mean_abs"]
            < rows["independence"]["mean_abs"]
        )

    def test_pcbl_beats_independence(self, table):
        rows = {row["estimator"]: row for row in table}
        assert rows["pcbl-subset"]["max_abs"] < rows["independence"]["max_abs"]

    def test_spaces_reported(self, table):
        for row in table:
            assert row["space"] > 0


class TestMultiLabelStudy:
    def test_rows_and_space_accounting(self, compas_small):
        table = multi_label_study(compas_small, "compas", bound=20)
        assert len(table) >= 2
        configurations = table.column("configuration")
        assert any("one label, budget 20" in c for c in configurations)
        assert any("one label, budget 40" in c for c in configurations)
        for row in table:
            assert row["total_space"] > 0

    def test_double_budget_no_worse_than_single(self, compas_small):
        table = multi_label_study(compas_small, "compas", bound=20)
        rows = {row["configuration"]: row for row in table}
        single = rows["one label, budget 20"]["max_abs"]
        double = rows["one label, budget 40"]["max_abs"]
        assert double <= single + 1e-9
